"""The colo substrate: facilities, pricing, the operator, RelaySite."""

from __future__ import annotations

import pytest

from repro.cloud.datacenter import PortSpeed
from repro.colo.facility import DEFAULT_COLO_CITIES, ColoFacility, validate_colo_cities
from repro.colo.operator import ColoOperator
from repro.colo.pricing import ColoPricingModel
from repro.colo.site import COLO_CPU_PPS, SUBSTRATES, RelaySite
from repro.demand.relay import DEFAULT_CPU_PPS, RelayCapacity
from repro.errors import BillingError, ColoError, TopologyError, TunnelError
from repro.net.asn import ASKind
from repro.net.links import LinkClass
from repro.net.topology import HUB_CITIES, TopologyConfig, generate_topology
from repro.net.world import Internet
from repro.rand import RandomStreams


class TestFacility:
    def test_must_sit_at_a_hub_city(self):
        with pytest.raises(ColoError):
            ColoFacility(name="x", city_name="atlanta")

    def test_region_comes_from_the_city(self):
        facility = ColoFacility(name="x", city_name="london")
        assert facility.region == "eu"

    def test_validate_rejects_empty_dup_and_non_hub(self):
        with pytest.raises(ColoError):
            validate_colo_cities(())
        with pytest.raises(ColoError):
            validate_colo_cities(("london", "london"))
        with pytest.raises(ColoError):
            validate_colo_cities(("atlanta",))
        validate_colo_cities(DEFAULT_COLO_CITIES)

    def test_default_cities_are_hubs(self):
        assert set(DEFAULT_COLO_CITIES) <= set(HUB_CITIES)


class TestPricing:
    def test_site_price_is_the_sum_of_its_parts(self):
        pricing = ColoPricingModel()
        expected = 250.0 + 100.0 + 200.0 + 3 * 100.0 + 100.0 * 0.50
        assert pricing.site_monthly_usd(
            PortSpeed.GBPS_1, cross_connects=3, transit_commit_mbps=100.0
        ) == pytest.approx(expected)

    def test_port_fee_scales_with_speed(self):
        pricing = ColoPricingModel()
        assert pricing.port_fee_usd(PortSpeed.MBPS_100) < pricing.port_fee_usd(
            PortSpeed.GBPS_1
        ) < pricing.port_fee_usd(PortSpeed.GBPS_10)

    def test_guards(self):
        pricing = ColoPricingModel()
        with pytest.raises(BillingError):
            pricing.site_monthly_usd(cross_connects=0)
        with pytest.raises(BillingError):
            pricing.site_monthly_usd(transit_commit_mbps=-1.0)
        with pytest.raises(BillingError):
            pricing.footprint_monthly_usd(0)

    def test_footprint_multiplies_sites(self):
        pricing = ColoPricingModel()
        assert pricing.footprint_monthly_usd(3) == pytest.approx(
            3 * pricing.site_monthly_usd()
        )

    def test_colo_dwarfs_the_cloud_vm(self):
        # The trade the colo paper studies: ~an order of magnitude over
        # the paper's $20/month VM.
        assert ColoPricingModel().site_monthly_usd() > 20.0 * 10


@pytest.fixture()
def colo_world():
    """A small topology with a colo operator deployed, plus the Internet."""
    streams = RandomStreams(seed=1234)
    topo = generate_topology(TopologyConfig.small(), streams)
    operator = ColoOperator.deploy(topo, ("new_york", "london"), streams)
    return Internet(topo, streams), operator


class TestOperator:
    def test_deploy_creates_one_single_pop_as_per_city(self, colo_world):
        internet, operator = colo_world
        assert sorted(operator.site_asns) == ["london", "new_york"]
        for city_name, asn in operator.site_asns.items():
            colo_as = internet.topology.ases[asn]
            assert colo_as.kind is ASKind.COLO
            assert colo_as.pop_cities == (city_name,)

    def test_deploy_rejects_non_hub_city(self):
        streams = RandomStreams(seed=1234)
        topo = generate_topology(TopologyConfig.small(), streams)
        with pytest.raises(ColoError):
            ColoOperator.deploy(topo, ("atlanta",), streams)

    def test_facility_links_get_colo_classes(self, colo_world):
        internet, operator = colo_world
        colo_asns = set(operator.site_asns.values())
        classes = {
            link.link_class
            for link in internet.links_by_id.values()
            if {internet.routers.get(link.router_a).asn,
                internet.routers.get(link.router_b).asn} & colo_asns
        }
        assert LinkClass.COLO_TRANSIT in classes
        assert classes <= {LinkClass.COLO_TRANSIT, LinkClass.COLO_PEERING}

    def test_rent_server_attaches_a_colo_relay(self, colo_world):
        internet, operator = colo_world
        server = operator.rent_server(internet, "london")
        assert server.host.kind == "colo_relay"
        assert server.host.city_name == "london"
        assert server.rate_limit_mbps == PortSpeed.GBPS_1.mbps
        assert server.cross_connects == operator.attachments["london"]
        assert server.monthly_cost_usd == pytest.approx(
            operator.pricing.site_monthly_usd(
                PortSpeed.GBPS_1, cross_connects=operator.attachments["london"]
            )
        )

    def test_rent_in_unknown_city_raises(self, colo_world):
        internet, operator = colo_world
        with pytest.raises(ColoError):
            operator.rent_server(internet, "tokyo")

    def test_bill_and_release(self, colo_world):
        internet, operator = colo_world
        a = operator.rent_server(internet, "london")
        b = operator.rent_server(internet, "new_york")
        assert operator.monthly_bill_usd() == pytest.approx(
            a.monthly_cost_usd + b.monthly_cost_usd
        )
        operator.release_server(a)
        assert operator.monthly_bill_usd() == pytest.approx(b.monthly_cost_usd)
        with pytest.raises(ColoError):
            operator.release_server(a)


class TestTopologyAttach:
    def test_add_colo_as_validates_inputs(self, small_topology):
        import copy

        topo = copy.deepcopy(small_topology)
        tier1 = topo.ases_of_kind(ASKind.TIER1)[0]
        with pytest.raises(TopologyError):
            topo.add_colo_as("c", "atlanta", [tier1.asn], [])
        with pytest.raises(TopologyError):
            topo.add_colo_as("c", "new_york", [], [])
        out_of_town = [
            a.asn
            for a in topo.ases_of_kind(ASKind.TRANSIT)
            if not a.has_pop("new_york")
        ]
        if out_of_town:
            with pytest.raises(TopologyError):
                topo.add_colo_as("c", "new_york", [tier1.asn], out_of_town[:1])


class TestRelaySite:
    def test_substrates_are_closed(self):
        assert SUBSTRATES == ("cloud", "colo")

    def test_from_colo_carries_bare_metal_budget(self, colo_world):
        internet, operator = colo_world
        site = RelaySite.from_colo(operator.rent_server(internet, "london"))
        assert site.substrate == "colo"
        assert site.cpu_pps == COLO_CPU_PPS
        assert site.city_name == "london"

    def test_from_vm_matches_demand_default(self, small_internet):
        from repro.cloud.datacenter import DataCenter
        from repro.cloud.provider import CloudProvider

        provider = CloudProvider(
            name="softcloud",
            asn=small_internet.cloud_asn,
            datacenters={"dallas": DataCenter(name="dallas", city_name="dallas")},
        )
        site = RelaySite.from_vm(provider.rent_vm(small_internet, "dallas"))
        assert site.substrate == "cloud"
        assert site.cpu_pps == DEFAULT_CPU_PPS

    def test_capacity_from_site_mirrors_fields(self, colo_world):
        internet, operator = colo_world
        site = RelaySite.from_colo(operator.rent_server(internet, "london"))
        capacity = RelayCapacity.from_site(site)
        assert capacity.label == site.name
        assert capacity.nic_mbps == site.rate_limit_mbps
        assert capacity.cpu_pps == COLO_CPU_PPS

    def test_validation(self, colo_world):
        internet, operator = colo_world
        host = operator.rent_server(internet, "london").host
        with pytest.raises(ColoError):
            RelaySite(host=host, substrate="edge", rate_limit_mbps=1000.0,
                      cpu_pps=1.0, monthly_cost_usd=0.0)
        with pytest.raises(ColoError):
            RelaySite(host=host, substrate="colo", rate_limit_mbps=0.0,
                      cpu_pps=1.0, monthly_cost_usd=0.0)


class TestSubstrateBlindness:
    def test_overlay_nodes_accept_colo_relays(self, colo_world):
        from repro.tunnel.node import OverlayNode

        internet, operator = colo_world
        server = operator.rent_server(internet, "london")
        node = OverlayNode(host=server.host)
        assert node.name == server.name

    def test_overlay_nodes_still_reject_client_hosts(self, small_internet):
        from repro.tunnel.node import OverlayNode

        host = small_internet.host("client")
        with pytest.raises(TunnelError):
            OverlayNode(host=host)

    def test_mixed_cronet_routes_through_both_substrates(self, colo_world):
        from repro.core.cronet import CRONet

        internet, operator = colo_world
        stubs = internet.topology.ases_of_kind(ASKind.STUB)
        internet.attach_host("client", stubs[0].asn, kind="planetlab")
        internet.attach_host("server", stubs[-1].asn, kind="server")
        sites = [
            RelaySite.from_colo(operator.rent_server(internet, "london")),
            RelaySite.from_colo(operator.rent_server(internet, "new_york")),
        ]
        cronet = CRONet.from_sites(internet, sites)
        pathset = cronet.path_set("server", "client")
        assert {o.name for o in pathset.options} == {s.name for s in sites}
        for option in pathset.options:
            assert pathset.split_chain(option).throughput_at(0.0) > 0.0

    def test_cronet_cost_sums_sites(self, colo_world):
        from repro.core.cronet import CRONet

        internet, operator = colo_world
        sites = [RelaySite.from_colo(operator.rent_server(internet, "london"))]
        cronet = CRONet.from_sites(internet, sites)
        assert cronet.monthly_cost_usd() == pytest.approx(sites[0].monthly_cost_usd)

"""MeasurementCampaign error tolerance: flaky tasks do not abort runs."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.measure import MeasurementCampaign


class TestCampaignErrorTolerance:
    def test_flaky_task_yields_error_samples_and_campaign_continues(self, small_internet):
        calls = {"n": 0}

        def flaky(now: float) -> float:
            calls["n"] += 1
            if calls["n"] == 2:
                raise MeasurementError("vantage point rebooted")
            return now

        def steady(now: float) -> float:
            return now

        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=3)
        results = campaign.run({"flaky": flaky, "steady": steady})

        # Every task still has one sample per iteration.
        assert len(results["flaky"]) == 3
        assert len(results["steady"]) == 3
        # The failure is an error-marked sample, not an exception.
        failed = results["flaky"][1]
        assert not failed.ok
        assert failed.value is None
        assert "vantage point rebooted" in failed.error
        assert "MeasurementError" in failed.error
        # Neighbouring iterations of the same task are untouched.
        assert results["flaky"][0].ok and results["flaky"][2].ok
        # The other task never noticed.
        assert all(sample.ok for sample in results["steady"])

    def test_ok_defaults_keep_existing_consumers_working(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=2)
        results = campaign.run({"t": lambda now: 42.0})
        for sample in results["t"]:
            assert sample.ok
            assert sample.error is None
            assert sample.value == 42.0

    def test_clock_still_advances_after_errors(self, small_internet):
        def always_broken(now: float) -> float:
            raise RuntimeError("boom")

        campaign = MeasurementCampaign(small_internet, interval_s=60.0, iterations=3)
        results = campaign.run({"broken": always_broken})
        times = [sample.at_time for sample in results["broken"]]
        assert times == [0.0, 60.0, 120.0]
        assert all(not sample.ok for sample in results["broken"])

    def test_empty_campaign_still_rejected(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=1)
        with pytest.raises(MeasurementError):
            campaign.run({})

"""MeasurementCampaign error tolerance: flaky tasks do not abort runs."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.measure import MeasurementCampaign


class TestCampaignErrorTolerance:
    def test_flaky_task_yields_error_samples_and_campaign_continues(self, small_internet):
        calls = {"n": 0}

        def flaky(now: float) -> float:
            calls["n"] += 1
            if calls["n"] == 2:
                raise MeasurementError("vantage point rebooted")
            return now

        def steady(now: float) -> float:
            return now

        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=3)
        results = campaign.run({"flaky": flaky, "steady": steady})

        # Every task still has one sample per iteration.
        assert len(results["flaky"]) == 3
        assert len(results["steady"]) == 3
        # The failure is an error-marked sample, not an exception.
        failed = results["flaky"][1]
        assert not failed.ok
        assert failed.value is None
        assert "vantage point rebooted" in failed.error
        assert "MeasurementError" in failed.error
        # Neighbouring iterations of the same task are untouched.
        assert results["flaky"][0].ok and results["flaky"][2].ok
        # The other task never noticed.
        assert all(sample.ok for sample in results["steady"])

    def test_ok_defaults_keep_existing_consumers_working(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=2)
        results = campaign.run({"t": lambda now: 42.0})
        for sample in results["t"]:
            assert sample.ok
            assert sample.error is None
            assert sample.value == 42.0

    def test_clock_still_advances_after_errors(self, small_internet):
        def always_broken(now: float) -> float:
            raise RuntimeError("boom")

        campaign = MeasurementCampaign(small_internet, interval_s=60.0, iterations=3)
        results = campaign.run({"broken": always_broken})
        times = [sample.at_time for sample in results["broken"]]
        assert times == [0.0, 60.0, 120.0]
        assert all(not sample.ok for sample in results["broken"])

    def test_empty_campaign_still_rejected(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=1)
        with pytest.raises(MeasurementError):
            campaign.run({})


class TestCampaignSummary:
    def run_mixed(self, small_internet) -> MeasurementCampaign:
        def flaky(now: float) -> float:
            if now >= 10.0:
                raise RuntimeError("boom")
            return now

        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=3)
        campaign.run({"flaky": flaky, "steady": lambda now: now})
        return campaign

    def test_summary_counts_per_task(self, small_internet):
        summary = self.run_mixed(small_internet).summary
        assert summary.counts["flaky"].ok == 1
        assert summary.counts["flaky"].errors == 2
        assert summary.counts["steady"].ok == 3
        assert summary.counts["steady"].errors == 0
        assert summary.total_ok == 4
        assert summary.total_errors == 2
        assert summary.flaky_tasks() == ("flaky",)

    def test_summary_render_flags_flaky_tasks(self, small_internet):
        rendered = self.run_mixed(small_internet).summary.render()
        assert "4 ok, 2 errors" in rendered
        assert "flaky: 1 ok, 2 errors  <- flaky" in rendered
        assert "steady: 3 ok, 0 errors" in rendered

    def test_summary_none_before_any_run(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=1)
        assert campaign.summary is None

    def test_metrics_registry_sees_every_sample(self, small_internet):
        from repro.control.metrics import MetricsRegistry

        metrics = MetricsRegistry()

        def broken(now: float) -> float:
            raise RuntimeError("boom")

        campaign = MeasurementCampaign(small_internet, interval_s=10.0, iterations=2)
        campaign.run({"broken": broken, "steady": lambda now: now}, metrics=metrics)
        assert (
            metrics.counter(
                "campaign_samples_total", {"task": "broken", "outcome": "error"}
            ).value
            == 2
        )
        assert (
            metrics.counter(
                "campaign_samples_total", {"task": "steady", "outcome": "ok"}
            ).value
            == 2
        )

"""Topology generation and structure."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, TopologyError
from repro.net import Relationship, Topology, TopologyConfig, generate_topology
from repro.net.asn import ASKind, AutonomousSystem
from repro.rand import RandomStreams


class TestAutonomousSystem:
    def test_rejects_empty_pops(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=1, name="x", kind=ASKind.STUB, pop_cities=())

    def test_rejects_duplicate_pops(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(
                asn=1, name="x", kind=ASKind.STUB, pop_cities=("tokyo", "tokyo")
            )

    def test_stub_like(self):
        assert ASKind.STUB.is_stub_like
        assert ASKind.ACADEMIC.is_stub_like
        assert ASKind.CONTENT.is_stub_like
        assert not ASKind.TIER1.is_stub_like
        assert not ASKind.CLOUD.is_stub_like


class TestTopologyBasics:
    def _two_as(self):
        topo = Topology()
        a = topo.add_as(
            AutonomousSystem(asn=10, name="a", kind=ASKind.TIER1, pop_cities=("tokyo", "london"))
        )
        b = topo.add_as(
            AutonomousSystem(asn=20, name="b", kind=ASKind.TRANSIT, pop_cities=("london",))
        )
        return topo, a, b

    def test_duplicate_asn_rejected(self):
        topo, a, _ = self._two_as()
        with pytest.raises(TopologyError):
            topo.add_as(
                AutonomousSystem(asn=a.asn, name="dup", kind=ASKind.STUB, pop_cities=("tokyo",))
            )

    def test_customer_relation_adjacency(self):
        topo, a, b = self._two_as()
        topo.add_relation(b.asn, a.asn, Relationship.CUSTOMER)
        assert topo.providers_of(b.asn) == [a.asn]
        assert topo.customers_of(a.asn) == [b.asn]
        assert topo.peers_of(a.asn) == []

    def test_peer_relation_adjacency(self):
        topo, a, b = self._two_as()
        topo.add_relation(a.asn, b.asn, Relationship.PEER)
        assert topo.peers_of(a.asn) == [b.asn]
        assert topo.peers_of(b.asn) == [a.asn]

    def test_duplicate_relation_rejected(self):
        topo, a, b = self._two_as()
        topo.add_relation(a.asn, b.asn, Relationship.PEER)
        with pytest.raises(TopologyError):
            topo.add_relation(b.asn, a.asn, Relationship.CUSTOMER)

    def test_interconnect_prefers_shared_city(self):
        topo, a, b = self._two_as()
        rel = topo.add_relation(a.asn, b.asn, Relationship.PEER)
        assert ("london", "london") in rel.interconnect_cities

    def test_relation_between_lookup(self):
        topo, a, b = self._two_as()
        rel = topo.add_relation(a.asn, b.asn, Relationship.PEER)
        assert topo.relation_between(b.asn, a.asn) is rel
        with pytest.raises(TopologyError):
            topo.relation_between(a.asn, 999)

    def test_validate_catches_partition(self):
        topo, a, _b = self._two_as()
        orphan = topo.add_as(
            AutonomousSystem(asn=30, name="orphan", kind=ASKind.STUB, pop_cities=("paris",))
        )
        assert orphan.asn == 30
        with pytest.raises(TopologyError):
            topo.validate()


class TestGeneratedTopology:
    def test_counts_match_config(self, small_topology):
        cfg = TopologyConfig.small()
        assert len(small_topology.ases_of_kind(ASKind.TIER1)) == cfg.n_tier1
        assert len(small_topology.ases_of_kind(ASKind.TRANSIT)) == cfg.n_transit
        assert len(small_topology.ases_of_kind(ASKind.STUB)) == cfg.n_stub
        assert len(small_topology.ases_of_kind(ASKind.ACADEMIC)) == cfg.n_academic
        assert len(small_topology.ases_of_kind(ASKind.CONTENT)) == cfg.n_content

    def test_tier1_clique(self, small_topology):
        t1s = small_topology.ases_of_kind(ASKind.TIER1)
        for a in t1s:
            for b in t1s:
                if a.asn != b.asn:
                    assert b.asn in small_topology.peers_of(a.asn)

    def test_every_stub_has_provider(self, small_topology):
        for kind in (ASKind.STUB, ASKind.ACADEMIC, ASKind.CONTENT):
            for stub in small_topology.ases_of_kind(kind):
                assert small_topology.providers_of(stub.asn)

    def test_stubs_have_single_pop(self, small_topology):
        for stub in small_topology.ases_of_kind(ASKind.STUB):
            assert len(stub.pop_cities) == 1

    def test_generation_deterministic(self):
        cfg = TopologyConfig.small()
        t1 = generate_topology(cfg, RandomStreams(seed=99))
        t2 = generate_topology(cfg, RandomStreams(seed=99))
        assert sorted(t1.ases) == sorted(t2.ases)
        assert [(r.a, r.b, r.rel) for r in t1.relations] == [
            (r.a, r.b, r.rel) for r in t2.relations
        ]

    def test_generation_varies_with_seed(self):
        cfg = TopologyConfig.small()
        t1 = generate_topology(cfg, RandomStreams(seed=99))
        t2 = generate_topology(cfg, RandomStreams(seed=100))
        rels1 = [(r.a, r.b, r.rel.value) for r in t1.relations]
        rels2 = [(r.a, r.b, r.rel.value) for r in t2.relations]
        assert rels1 != rels2

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TopologyConfig(n_tier1=1)
        with pytest.raises(ConfigError):
            TopologyConfig(stub_region_weights={"na": 0.5})

    def test_add_cloud_as_skips_duplicate_peer(self):
        topo = generate_topology(TopologyConfig.small(), RandomStreams(seed=5))
        t1s = [a.asn for a in topo.ases_of_kind(ASKind.TIER1)]
        cloud = topo.add_cloud_as(
            "cloud-x",
            ("dallas", "tokyo"),
            transit_tier1s=[t1s[0]],
            peer_asns=[t1s[0], t1s[1]],  # t1s[0] is already a provider
        )
        assert topo.providers_of(cloud.asn) == [t1s[0]]
        assert topo.peers_of(cloud.asn) == [t1s[1]]

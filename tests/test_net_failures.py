"""FailureSchedule liveness: the union of active windows governs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.failures import FailureEvent, FailureSchedule


def victim(small_internet):
    return next(iter(small_internet.links_by_id.values()))


class TestOverlappingEvents:
    def test_overlap_keeps_link_down_through_union(self, small_internet):
        # [100, 200) and [150, 300): the first event's end must not
        # restore the link while the second still covers the instant.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 150.0, 150.0)
        for t, down in ((99.0, False), (120.0, True), (250.0, True), (300.0, False)):
            schedule.apply(t)
            assert link.failed is down, f"at t={t}"

    def test_adjacent_windows_merge_seamlessly(self, small_internet):
        # [100, 200) then [200, 300): no one-instant blip in between.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 200.0, 100.0)
        assert schedule.down_windows(link.link_id) == [(100.0, 300.0)]
        schedule.apply(200.0)
        assert link.failed

    def test_down_windows_merges_and_sorts(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 500.0, 100.0)
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 150.0, 100.0)
        assert schedule.down_windows(link.link_id) == [(100.0, 250.0), (500.0, 600.0)]

    def test_down_at_matches_any_event(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 400.0, 100.0)
        assert schedule.down_at(link.link_id, 150.0)
        assert not schedule.down_at(link.link_id, 300.0)
        assert schedule.down_at(link.link_id, 450.0)
        assert not schedule.down_at(link.link_id, 600.0)

    def test_scheduled_links(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        assert schedule.scheduled_links() == set()
        schedule.schedule(link.link_id, 0.0, 10.0)
        assert schedule.scheduled_links() == {link.link_id}


class TestValidation:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigError):
            FailureEvent(link_id=1, start_s=-1.0, duration_s=10.0)
        with pytest.raises(ConfigError):
            FailureEvent(link_id=1, start_s=0.0, duration_s=0.0)

    def test_unknown_link_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            small_internet.failures.schedule(999_999, 0.0, 1.0)

    def test_unscheduled_links_left_alone(self, small_internet):
        schedule = FailureSchedule(links_by_id=small_internet.links_by_id)
        link = victim(small_internet)
        link.fail()  # manual failure, no schedule entry
        schedule.apply(50.0)
        assert link.failed
        link.restore()


class TestOwnership:
    """The schedule restores only links *it* failed."""

    def test_manual_failure_survives_window_end(self, small_internet):
        # A link failed by hand before an overlapping scheduled window
        # ends must stay down: the schedule never owned it.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        link.fail()  # manual, outside any apply()
        schedule.apply(150.0)  # window active; link already down
        assert link.failed
        schedule.apply(250.0)  # window over; manual failure must persist
        assert link.failed
        link.restore()

    def test_scheduled_failure_still_restored(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.apply(150.0)  # the schedule itself fails the link
        assert link.failed
        schedule.apply(250.0)
        assert not link.failed

    def test_ownership_resets_each_window(self, small_internet):
        # Own the link in window one, release it, then respect a manual
        # failure that lands between the windows.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 50.0)
        schedule.schedule(link.link_id, 300.0, 50.0)
        schedule.apply(120.0)
        assert link.failed
        schedule.apply(200.0)
        assert not link.failed
        link.fail()  # manual failure between the two windows
        schedule.apply(320.0)
        assert link.failed
        schedule.apply(400.0)  # second window ends: manual owner keeps it
        assert link.failed
        link.restore()

"""FailureSchedule liveness: the union of active windows governs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.failures import FailureEvent, FailureSchedule


def victim(small_internet):
    return next(iter(small_internet.links_by_id.values()))


class TestOverlappingEvents:
    def test_overlap_keeps_link_down_through_union(self, small_internet):
        # [100, 200) and [150, 300): the first event's end must not
        # restore the link while the second still covers the instant.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 150.0, 150.0)
        for t, down in ((99.0, False), (120.0, True), (250.0, True), (300.0, False)):
            schedule.apply(t)
            assert link.failed is down, f"at t={t}"

    def test_adjacent_windows_merge_seamlessly(self, small_internet):
        # [100, 200) then [200, 300): no one-instant blip in between.
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 200.0, 100.0)
        assert schedule.down_windows(link.link_id) == [(100.0, 300.0)]
        schedule.apply(200.0)
        assert link.failed

    def test_down_windows_merges_and_sorts(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 500.0, 100.0)
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 150.0, 100.0)
        assert schedule.down_windows(link.link_id) == [(100.0, 250.0), (500.0, 600.0)]

    def test_down_at_matches_any_event(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        schedule.schedule(link.link_id, 100.0, 100.0)
        schedule.schedule(link.link_id, 400.0, 100.0)
        assert schedule.down_at(link.link_id, 150.0)
        assert not schedule.down_at(link.link_id, 300.0)
        assert schedule.down_at(link.link_id, 450.0)
        assert not schedule.down_at(link.link_id, 600.0)

    def test_scheduled_links(self, small_internet):
        link = victim(small_internet)
        schedule = small_internet.failures
        assert schedule.scheduled_links() == set()
        schedule.schedule(link.link_id, 0.0, 10.0)
        assert schedule.scheduled_links() == {link.link_id}


class TestValidation:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigError):
            FailureEvent(link_id=1, start_s=-1.0, duration_s=10.0)
        with pytest.raises(ConfigError):
            FailureEvent(link_id=1, start_s=0.0, duration_s=0.0)

    def test_unknown_link_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            small_internet.failures.schedule(999_999, 0.0, 1.0)

    def test_unscheduled_links_left_alone(self, small_internet):
        schedule = FailureSchedule(links_by_id=small_internet.links_by_id)
        link = victim(small_internet)
        link.fail()  # manual failure, no schedule entry
        schedule.apply(50.0)
        assert link.failed
        link.restore()

"""Bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    fraction_above_ci,
    mean_ci,
    median_ci,
)
from repro.errors import AnalysisError


class TestConfidenceInterval:
    def test_contains_and_width(self):
        ci = ConfidenceInterval(point=1.0, low=0.5, high=1.5, confidence=0.95)
        assert ci.contains(1.0)
        assert not ci.contains(2.0)
        assert ci.width == 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ConfidenceInterval(point=1.0, low=2.0, high=1.0, confidence=0.95)
        with pytest.raises(AnalysisError):
            ConfidenceInterval(point=1.0, low=0.0, high=2.0, confidence=1.5)


class TestBootstrap:
    def test_median_ci_covers_truth(self):
        rng = np.random.default_rng(1)
        data = rng.normal(loc=10.0, scale=2.0, size=500)
        ci = median_ci(list(data), np.random.default_rng(2))
        assert ci.contains(10.0)
        assert ci.width < 1.0  # n=500 keeps it tight

    def test_mean_ci_covers_truth(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(scale=5.0, size=800)
        ci = mean_ci(list(data), np.random.default_rng(4))
        assert ci.contains(5.0)

    def test_fraction_above(self):
        data = [0.5] * 40 + [1.5] * 60
        ci = fraction_above_ci(data, 1.0, np.random.default_rng(5))
        assert ci.point == pytest.approx(0.6)
        assert ci.contains(0.6)

    def test_more_data_tightens(self):
        rng = np.random.default_rng(6)
        small = list(rng.normal(size=30))
        big = list(rng.normal(size=3_000))
        ci_small = mean_ci(small, np.random.default_rng(7))
        ci_big = mean_ci(big, np.random.default_rng(7))
        assert ci_big.width < ci_small.width

    def test_deterministic_given_rng_seed(self):
        data = list(np.random.default_rng(8).normal(size=100))
        a = median_ci(data, np.random.default_rng(9))
        b = median_ci(data, np.random.default_rng(9))
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(AnalysisError):
            bootstrap_ci([], np.mean, rng)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0], np.mean, rng, resamples=5)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0], np.mean, rng, confidence=0.0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=5, max_size=80))
def test_interval_brackets_point(data):
    """The point estimate always falls inside its own interval."""
    ci = mean_ci(data, np.random.default_rng(1), confidence=0.9)
    assert ci.low - 1e-9 <= ci.point <= ci.high + 1e-9

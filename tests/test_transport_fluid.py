"""Fluid simulator and MPTCP connection behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport import MptcpConnection, MptcpScheme, TcpConnection
from repro.transport.cc import RenoCC
from repro.transport.fluid import FluidSimulator


@pytest.fixture()
def paths(small_internet):
    direct = small_internet.resolve_path("client", "server")
    leg1 = small_internet.resolve_path("client", "vm")
    leg2 = small_internet.resolve_path("vm", "server")
    return direct, leg1.concatenate(leg2)


T0 = 3_600.0


def run_single(path, seed=1, duration=45.0, rwnd=4_194_304):
    sim = FluidSimulator(at_time=T0, rng=np.random.default_rng(seed))
    flow = sim.add_flow(path, RenoCC(), rwnd_bytes=rwnd)
    return sim.run(duration)[flow.flow_id]


class TestFluidSingleFlow:
    def test_positive_goodput(self, paths):
        direct, _ = paths
        stats = run_single(direct)
        assert stats.throughput_mbps > 0

    def test_agrees_with_model_within_factor(self, paths):
        """Fluid Reno and the Mathis-based model must roughly agree.

        Mathis is a steady-state average; a finite run with few loss
        events legitimately rides above it (the cleaner the path, the
        wider the gap), so we only pin the order of magnitude.
        """
        from repro.transport import TcpParams

        direct, overlay = paths
        for path in (direct, overlay):
            model = TcpConnection(path, TcpParams(rwnd_bytes=4_194_304)).throughput_at(T0)
            fluid = run_single(path, duration=60.0).throughput_mbps
            assert 0.15 * model <= fluid <= 8.0 * model, (
                f"fluid {fluid} vs model {model} on {path.src_name}->{path.dst_name}"
            )

    def test_rwnd_caps_throughput(self, paths):
        direct, _ = paths
        small = run_single(direct, rwnd=32 * 1_460)
        big = run_single(direct, rwnd=4_194_304)
        assert small.throughput_mbps <= big.throughput_mbps + 0.5
        # rwnd cap: 32 segments per RTT
        rtt_s = direct.metrics(T0).rtt_ms / 1_000.0
        cap = 32 * 1_460 * 8 / rtt_s / 1e6
        assert small.throughput_mbps <= cap * 1.05

    def test_deterministic_given_seed(self, paths):
        direct, _ = paths
        a = run_single(direct, seed=9)
        b = run_single(direct, seed=9)
        assert a.throughput_mbps == b.throughput_mbps

    def test_throughput_capped_by_nic(self, paths):
        """All flows traverse the 100 Mbps host access links."""
        _, overlay = paths
        stats = run_single(overlay, duration=30.0)
        assert stats.throughput_mbps <= 100.0

    def test_validation(self, paths):
        direct, _ = paths
        sim = FluidSimulator(at_time=T0, rng=np.random.default_rng(0))
        with pytest.raises(TransportError):
            sim.run(10.0)  # no flows
        sim.add_flow(direct, RenoCC())
        with pytest.raises(TransportError):
            sim.run(0.0)
        with pytest.raises(TransportError):
            FluidSimulator(at_time=T0, rng=np.random.default_rng(0), tick_s=0.0)

    def test_retransmissions_recorded_on_lossy_path(self, paths):
        """A path with nonzero loss must report retransmitted bytes."""
        direct, _ = paths
        assert direct.metrics(T0).loss > 0
        stats = run_single(direct)
        assert stats.bytes_retransmitted > 0
        assert 0.0 < stats.retransmission_rate < 1.0


class TestCapacitySharing:
    def test_two_flows_share_bottleneck(self, paths):
        """Conservation: flows sharing the NIC cannot sum past it."""
        direct, _ = paths
        sim = FluidSimulator(at_time=T0, rng=np.random.default_rng(4))
        f1 = sim.add_flow(direct, RenoCC(), rwnd_bytes=16 * 1_048_576)
        f2 = sim.add_flow(direct, RenoCC(), rwnd_bytes=16 * 1_048_576)
        stats = sim.run(30.0)
        total = stats[f1.flow_id].throughput_mbps + stats[f2.flow_id].throughput_mbps
        assert total <= 100.0 + 1.0  # NIC capacity plus rounding


class TestMptcp:
    def test_olia_tracks_best_path(self, paths):
        """Fig. 12: coupled MPTCP at least matches the best single path.

        The design guarantee is a *lower* bound (Sec. VI-A); on paths
        with distinct bottlenecks coupled MPTCP may land somewhat above
        the best path — but always below the uncoupled aggregate, which
        the next test pins.
        """
        direct, overlay = paths
        singles = [run_single(p, seed=11).throughput_mbps for p in (direct, overlay)]
        best = max(singles)
        conn = MptcpConnection([direct, overlay], scheme=MptcpScheme.OLIA)
        got = conn.run(T0, 45.0, np.random.default_rng(12)).throughput_mbps
        assert got >= 0.6 * best
        assert got <= sum(singles) * 1.5  # far from unconstrained aggregation

    def test_cubic_aggregates(self, paths):
        """Fig. 13: uncoupled subflows sum their paths."""
        direct, overlay = paths
        coupled = MptcpConnection([direct, overlay], scheme=MptcpScheme.OLIA).run(
            T0, 45.0, np.random.default_rng(13)
        )
        uncoupled = MptcpConnection(
            [direct, overlay], scheme=MptcpScheme.UNCOUPLED_CUBIC
        ).run(T0, 45.0, np.random.default_rng(13))
        assert uncoupled.throughput_mbps > coupled.throughput_mbps

    def test_subflow_labels(self, paths):
        direct, overlay = paths
        res = MptcpConnection([direct, overlay]).run(T0, 5.0, np.random.default_rng(1))
        assert len(res.subflows) == 2
        assert res.subflow_labels[0] == "client->server"
        assert res.best_subflow_mbps() <= res.throughput_mbps + 1e-9

    def test_needs_paths(self):
        with pytest.raises(TransportError):
            MptcpConnection([])

    def test_failover_survives_direct_path_failure(self, paths, small_internet):
        """Sec. VI-A: if the default path fails, MPTCP keeps going."""
        direct, overlay = paths
        victim = None
        for link in direct.links:
            if all(link is not other for other in overlay.links):
                victim = link
                break
        assert victim is not None, "need a direct-only link to fail"

        def fail_at_10s(sim, elapsed):
            if elapsed >= 10.0 and not victim.failed:
                victim.fail()

        conn = MptcpConnection([direct, overlay], scheme=MptcpScheme.OLIA)
        baseline = conn.run(T0, 40.0, np.random.default_rng(7))
        try:
            failed = conn.run(T0, 40.0, np.random.default_rng(7), on_tick=fail_at_10s)
        finally:
            victim.restore()
        # The connection survived: the overlay subflow kept delivering.
        assert failed.subflows[1].throughput_mbps > 0.1
        # The direct subflow died mid-run: it moved fewer bytes than in
        # the identical run without the failure.
        assert failed.subflows[0].bytes_acked < baseline.subflows[0].bytes_acked
        # And the aggregate still delivered a useful fraction.
        assert failed.throughput_mbps > 0.25 * baseline.throughput_mbps

"""PathHealth state machine: hysteresis, recovery, time-in-state."""

from __future__ import annotations

import math

import pytest

from repro.control.health import HealthConfig, PathHealth, PathState
from repro.control.probes import ProbeResult
from repro.errors import ControlError


def probe(
    label: str = "p",
    at: float = 0.0,
    ok: bool = True,
    rtt: float = 100.0,
    loss: float = 0.001,
) -> ProbeResult:
    return ProbeResult(
        label=label,
        at_time=at,
        ok=ok,
        rtt_ms=rtt if ok else math.inf,
        loss=loss if ok else 1.0,
        throughput_mbps=None,
        bytes_cost=0,
    )


def machine(**overrides) -> PathHealth:
    defaults = dict(
        degrade_after=2, fail_after=2, recover_after=2, recovery_hold_s=30.0
    )
    defaults.update(overrides)
    return PathHealth(label="p", config=HealthConfig(**defaults))


class TestFailureDetection:
    def test_single_bad_probe_is_noise(self):
        m = machine()
        assert m.observe(probe(at=0.0, ok=False)) is None
        assert m.state is PathState.HEALTHY

    def test_consecutive_bad_probes_fail_the_path(self):
        m = machine()
        m.observe(probe(at=0.0, ok=False))
        transition = m.observe(probe(at=10.0, ok=False))
        assert transition is not None
        assert transition.new is PathState.FAILED
        assert not m.usable

    def test_good_probe_resets_bad_streak(self):
        m = machine()
        m.observe(probe(at=0.0, ok=False))
        m.observe(probe(at=10.0))
        m.observe(probe(at=20.0, ok=False))
        assert m.state is PathState.HEALTHY

    def test_high_loss_counts_as_failure(self):
        m = machine()
        m.observe(probe(at=0.0, loss=0.6))
        m.observe(probe(at=10.0, loss=0.7))
        assert m.state is PathState.FAILED


class TestDegradation:
    def test_loss_degrades(self):
        m = machine()
        m.observe(probe(at=0.0, loss=0.05))
        m.observe(probe(at=10.0, loss=0.05))
        assert m.state is PathState.DEGRADED

    def test_rtt_above_baseline_degrades(self):
        m = machine()
        # Learn a ~100 ms baseline...
        for t in range(3):
            m.observe(probe(at=float(t)))
        # ...then observe sustained 3x RTT.
        m.observe(probe(at=10.0, rtt=300.0))
        m.observe(probe(at=20.0, rtt=300.0))
        assert m.state is PathState.DEGRADED

    def test_rtt_before_baseline_does_not_degrade(self):
        m = machine()
        m.observe(probe(at=0.0, rtt=500.0))
        m.observe(probe(at=1.0, rtt=500.0))
        # First samples *set* the baseline; they cannot violate it.
        assert m.state is PathState.HEALTHY


class TestRecovery:
    def _failed_machine(self) -> PathHealth:
        m = machine()
        m.observe(probe(at=0.0, ok=False))
        m.observe(probe(at=10.0, ok=False))
        assert m.state is PathState.FAILED
        return m

    def test_failed_promotes_to_degraded_then_healthy(self):
        m = self._failed_machine()
        m.observe(probe(at=20.0))
        transition = m.observe(probe(at=30.0))
        assert transition is not None and transition.new is PathState.DEGRADED
        # The promotion consumed the good streak: two *more* good
        # probes, past the hold timer, reach HEALTHY.
        m.observe(probe(at=40.0))
        transition = m.observe(probe(at=50.0))
        assert transition is not None and transition.new is PathState.HEALTHY

    def test_recovery_hold_blocks_early_promotion(self):
        m = self._failed_machine()
        m.observe(probe(at=11.0))
        m.observe(probe(at=12.0))  # -> DEGRADED
        m.observe(probe(at=13.0))
        m.observe(probe(at=14.0))  # hold (30 s since t=10) not elapsed
        assert m.state is PathState.DEGRADED
        m.observe(probe(at=45.0))  # now 35 s past the last bad probe
        assert m.state is PathState.HEALTHY

    def test_no_flapping_on_alternating_probes(self):
        m = machine()
        for t in range(20):
            m.observe(probe(at=float(t), ok=(t % 2 == 0)))
        # Alternation never builds the streaks either demotion or
        # promotion needs past DEGRADED.
        assert m.state is not PathState.FAILED
        assert len(m.transitions) <= 2


class TestAccounting:
    def test_time_in_state_totals_elapsed(self):
        m = self._run_to_failed()
        totals = m.time_in_state(100.0)
        assert totals["healthy"] == pytest.approx(10.0)
        assert totals["failed"] == pytest.approx(90.0)
        assert sum(totals.values()) == pytest.approx(100.0)

    def _run_to_failed(self) -> PathHealth:
        m = machine()
        m.observe(probe(at=0.0, ok=False))
        m.observe(probe(at=10.0, ok=False))
        return m

    def test_transitions_recorded(self):
        m = self._run_to_failed()
        assert [t.new for t in m.transitions] == [PathState.FAILED]
        assert m.transitions[0].reason

    def test_wrong_label_rejected(self):
        m = machine()
        with pytest.raises(ControlError):
            m.observe(probe(label="other"))


class TestConfigValidation:
    def test_bad_factor(self):
        with pytest.raises(ControlError):
            HealthConfig(degrade_rtt_factor=0.9)

    def test_bad_loss_ordering(self):
        with pytest.raises(ControlError):
            HealthConfig(degrade_loss=0.6, fail_loss=0.5)

    def test_bad_counts(self):
        with pytest.raises(ControlError):
            HealthConfig(fail_after=0)


class TestGrayDetection:
    """The throughput/ping cross-check behind the GRAY state."""

    def gray_machine(self, **overrides) -> PathHealth:
        defaults = dict(
            degrade_after=2, fail_after=2, recover_after=2, recovery_hold_s=30.0,
            gray_detect=True, gray_throughput_factor=0.5, gray_after=2,
        )
        defaults.update(overrides)
        return PathHealth(label="p", config=HealthConfig(**defaults))

    def tput_probe(self, at: float, mbps: float, **kw) -> ProbeResult:
        base = dict(label="p", at=at)
        base.update(kw)
        result = probe(**base)
        return ProbeResult(
            label=result.label,
            at_time=result.at_time,
            ok=result.ok,
            rtt_ms=result.rtt_ms,
            loss=result.loss,
            throughput_mbps=mbps,
            bytes_cost=result.bytes_cost,
        )

    def _learned(self, m: PathHealth) -> PathHealth:
        # Learn ~10 Mbps / ~100 ms baselines on good probes.
        for t in range(3):
            m.observe(self.tput_probe(float(t), 10.0))
        assert m.baseline_throughput_mbps == pytest.approx(10.0)
        return m

    def test_clean_pings_collapsed_throughput_goes_gray(self):
        m = self._learned(self.gray_machine())
        m.observe(self.tput_probe(10.0, 2.0))  # pings clean, tput -80%
        transition = m.observe(self.tput_probe(20.0, 2.0))
        assert transition is not None and transition.new is PathState.GRAY
        assert m.usable  # GRAY may still carry traffic as a last resort

    def test_single_gray_observation_is_noise(self):
        m = self._learned(self.gray_machine())
        m.observe(self.tput_probe(10.0, 2.0))
        assert m.state is PathState.HEALTHY

    def test_visible_loss_wins_over_gray(self):
        # A visibly lossy path is DEGRADED, not GRAY, however bad its
        # throughput: ping-visible evidence takes precedence.
        m = self._learned(self.gray_machine())
        m.observe(self.tput_probe(10.0, 2.0, loss=0.05))
        m.observe(self.tput_probe(20.0, 2.0, loss=0.05))
        assert m.state is PathState.DEGRADED

    def test_gray_recovers_without_hold(self):
        m = self._learned(self.gray_machine(recovery_hold_s=1_000.0))
        m.observe(self.tput_probe(10.0, 2.0))
        m.observe(self.tput_probe(20.0, 2.0))
        assert m.state is PathState.GRAY
        m.observe(self.tput_probe(21.0, 10.0))
        transition = m.observe(self.tput_probe(22.0, 10.0))
        # Straight back to HEALTHY seconds later, hold notwithstanding:
        # the throughput probe is direct evidence of recovery.
        assert transition is not None and transition.new is PathState.HEALTHY

    def test_gray_can_fail_outright(self):
        m = self._learned(self.gray_machine())
        m.observe(self.tput_probe(10.0, 2.0))
        m.observe(self.tput_probe(20.0, 2.0))
        assert m.state is PathState.GRAY
        m.observe(self.tput_probe(30.0, 0.0, ok=False))
        m.observe(self.tput_probe(40.0, 0.0, ok=False))
        assert m.state is PathState.FAILED

    def test_gray_ranks_between_degraded_and_failed(self):
        from repro.control.health import STATE_RANK

        assert (
            STATE_RANK[PathState.DEGRADED]
            < STATE_RANK[PathState.GRAY]
            < STATE_RANK[PathState.FAILED]
        )

    def test_detection_off_by_default(self):
        # Knobs off: the same probe sequence never leaves HEALTHY.
        m = machine()
        for t in range(3):
            m.observe(self.tput_probe(float(t), 10.0))
        m.observe(self.tput_probe(10.0, 2.0))
        m.observe(self.tput_probe(20.0, 2.0))
        m.observe(self.tput_probe(30.0, 2.0))
        assert m.state is PathState.HEALTHY
        assert not m.transitions

    def test_gray_config_validated(self):
        with pytest.raises(ControlError):
            HealthConfig(gray_throughput_factor=1.0)
        with pytest.raises(ControlError):
            HealthConfig(gray_after=0)

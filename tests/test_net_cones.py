"""Customer cones and topology hierarchy validation."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.net.asn import ASKind
from repro.net.cones import (
    cone_sizes,
    customer_cone,
    hierarchy_summary,
    reaches_everyone_via_customers_and_peers,
    transit_degree,
)


class TestCustomerCone:
    def test_stub_cone_is_itself(self, small_topology):
        stub = small_topology.ases_of_kind(ASKind.STUB)[0]
        assert customer_cone(small_topology, stub.asn) == {stub.asn}

    def test_tier1_cones_are_large(self, small_topology):
        sizes = cone_sizes(small_topology)
        tier1 = [a.asn for a in small_topology.ases_of_kind(ASKind.TIER1)]
        stubs = [a.asn for a in small_topology.ases_of_kind(ASKind.STUB)]
        assert min(sizes[t] for t in tier1) > max(sizes[s] for s in stubs)

    def test_cone_is_monotone_down_hierarchy(self, small_topology):
        """A provider's cone contains each customer's cone."""
        transit = small_topology.ases_of_kind(ASKind.TRANSIT)[0]
        cone = customer_cone(small_topology, transit.asn)
        for customer in small_topology.customers_of(transit.asn):
            assert customer_cone(small_topology, customer) <= cone

    def test_unknown_as_rejected(self, small_topology):
        with pytest.raises(TopologyError):
            customer_cone(small_topology, 999_999)
        with pytest.raises(TopologyError):
            transit_degree(small_topology, 999_999)


class TestHierarchy:
    def test_summary_ordering(self, small_topology):
        summary = hierarchy_summary(small_topology)
        assert summary["tier1"] > summary["transit"] > summary["stub"]
        assert summary["stub"] == 1.0

    def test_tier1s_reach_everyone_settlement_free(self, small_topology):
        tier1 = small_topology.ases_of_kind(ASKind.TIER1)[0]
        assert reaches_everyone_via_customers_and_peers(
            small_topology, tier1.asn
        ) == pytest.approx(1.0)

    def test_cloud_peering_reach(self):
        """The cloud's peering reach far exceeds a lone stub's."""
        from repro.cloud.provider import CloudProvider
        from repro.net import TopologyConfig, generate_topology
        from repro.rand import RandomStreams

        streams = RandomStreams(seed=71)
        topo = generate_topology(TopologyConfig.small(), streams)
        provider = CloudProvider.deploy(topo, ("dallas", "tokyo"), streams)
        cloud_reach = reaches_everyone_via_customers_and_peers(topo, provider.asn)
        stub = topo.ases_of_kind(ASKind.STUB)[0]
        stub_reach = reaches_everyone_via_customers_and_peers(topo, stub.asn)
        assert cloud_reach > stub_reach
        assert cloud_reach > 0.2  # peers' customer cones add up

    def test_transit_degree_counts_all_relations(self, small_topology):
        transit = small_topology.ases_of_kind(ASKind.TRANSIT)[0]
        degree = transit_degree(small_topology, transit.asn)
        expected = len(
            set(small_topology.providers_of(transit.asn))
            | set(small_topology.customers_of(transit.asn))
            | set(small_topology.peers_of(transit.asn))
        )
        assert degree == expected
        assert degree >= 1

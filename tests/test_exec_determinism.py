"""The exec subsystem's headline guarantees, end to end.

* the same campaign produces byte-identical result files at any
  worker count (1 / 4 / 8),
* a run killed mid-campaign resumes to completion with zero
  recomputation of already-cached shards,
* the sharded chaos and longitudinal ports reproduce the serial
  entry points exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExecError
from repro.exec.plan import ExecPlan, ExecTask, Stage, run_plan
from repro.exec.runner import ABORT_ENV, ExecConfig, ExecRunner
from repro.exec.spec import TaskSpec
from repro.experiments.chaos_exp import ChaosConfig, run_chaos, run_chaos_exec
from repro.experiments.controlled import ControlledConfig, run_controlled_exec
from repro.experiments.longitudinal import run_longitudinal
from repro.io import dump_json

SEED = 3
TOP_N = 4
SAMPLES = 6


def _campaign_result_file(tmp_path, tag: str, workers: int, cache_dir, resume=False):
    """Run controlled + longitudinal through exec; dump the result file."""
    runner = ExecRunner(
        ExecConfig(workers=workers, cache_dir=cache_dir, resume=resume)
    )
    campaign = run_controlled_exec(ControlledConfig(seed=SEED, scale="small"), runner)
    longitudinal = run_longitudinal(
        campaign, top_n=TOP_N, samples=SAMPLES, exec_runner=runner
    )
    target = dump_json(longitudinal, tmp_path / f"result-{tag}.json")
    return target.read_bytes(), runner


class TestWorkerCountInvariance:
    def test_workers_1_4_8_byte_identical_result_files(self, tmp_path):
        results = {}
        for workers in (1, 4, 8):
            cache = tmp_path / f"cache-w{workers}"
            results[workers], runner = _campaign_result_file(
                tmp_path, f"w{workers}", workers, cache
            )
            assert runner.manifest.errors == 0
            assert runner.manifest.cache_hits == 0  # fresh caches: all real work
        assert results[1] == results[4] == results[8]

    def test_shard_keys_do_not_depend_on_worker_count(self, tmp_path):
        keys = {}
        for workers in (1, 8):
            runner = ExecRunner(
                ExecConfig(workers=workers, cache_dir=tmp_path / f"c{workers}")
            )
            run_controlled_exec(ControlledConfig(seed=SEED, scale="small"), runner)
            keys[workers] = [r.key for r in runner.manifest.records]
        assert keys[1] == keys[8]


class TestResume:
    def test_killed_run_resumes_with_zero_recompute(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        # First attempt dies deterministically after 3 executed shards.
        monkeypatch.setenv(ABORT_ENV, "3")
        with pytest.raises(ExecError, match="simulated crash"):
            _campaign_result_file(tmp_path, "killed", 1, cache)
        monkeypatch.delenv(ABORT_ENV)

        # The dead shards' payloads are already durable in the cache.
        resumed_bytes, runner = _campaign_result_file(
            tmp_path, "resumed", 4, cache, resume=True
        )
        manifest = runner.manifest
        assert manifest.errors == 0
        assert manifest.cache_hits == 3  # exactly the pre-kill shards
        assert manifest.executed == len(manifest.records) - 3

        # And the resumed result is byte-identical to an undisturbed run.
        fresh_bytes, _ = _campaign_result_file(
            tmp_path, "fresh", 4, tmp_path / "fresh-cache"
        )
        assert resumed_bytes == fresh_bytes

    def test_full_resume_recomputes_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        first_bytes, _ = _campaign_result_file(tmp_path, "first", 2, cache)
        second_bytes, runner = _campaign_result_file(
            tmp_path, "second", 2, cache, resume=True
        )
        assert runner.manifest.executed == 0
        assert runner.manifest.cache_hits == len(runner.manifest.records)
        assert first_bytes == second_bytes


class TestSerialEquivalence:
    def test_chaos_exec_matches_serial_loop(self, tmp_path):
        from repro.io import to_jsonable

        config = ChaosConfig(
            seed=SEED, scale="small", scenarios=("as-outage",), duration_s=300.0
        )
        serial = run_chaos(config)
        runner = ExecRunner(ExecConfig(workers=4, cache_dir=tmp_path / "cache"))
        sharded = run_chaos_exec(config, runner)
        assert json.dumps(to_jsonable(serial), sort_keys=True) == json.dumps(
            to_jsonable(sharded), sort_keys=True
        )
        assert serial.render() == sharded.render()

    def test_longitudinal_exec_matches_serial_campaign(self, tmp_path):
        from repro.experiments.controlled import run_controlled
        from repro.io import to_jsonable

        config = ControlledConfig(seed=SEED, scale="small")
        serial_long = run_longitudinal(
            run_controlled(config), top_n=TOP_N, samples=SAMPLES
        )
        runner = ExecRunner(ExecConfig(workers=2, cache_dir=tmp_path / "cache"))
        exec_long = run_longitudinal(
            run_controlled_exec(config, runner),
            top_n=TOP_N,
            samples=SAMPLES,
            exec_runner=runner,
        )
        # The longitudinal sweep is RNG-free, so the sharded port must
        # reproduce the serial numbers exactly, not just statistically.
        assert to_jsonable(serial_long) == to_jsonable(exec_long)


class TestPlan:
    def test_two_stage_plan_feeds_payloads_forward(self, tmp_path):
        runner = ExecRunner(ExecConfig(workers=2, cache_dir=tmp_path / "cache"))

        def stage1(_prev):
            return [
                ExecTask(spec=TaskSpec("square", 7, i, 3), fn=lambda i=i: i * i)
                for i in range(3)
            ]

        def stage2(prev):
            total = sum(prev)
            return [
                ExecTask(spec=TaskSpec("sum", 7, 0, 1), fn=lambda: {"total": total})
            ]

        plan = ExecPlan(stages=(Stage("square", stage1), Stage("sum", stage2)))
        payloads = run_plan(plan, runner)
        assert payloads == [{"total": 0 + 1 + 4}]
        assert set(runner.manifest.stage_counts()) == {"square", "sum"}

    def test_plan_rejects_duplicate_stage_names(self):
        with pytest.raises(ExecError):
            ExecPlan(stages=(Stage("a", lambda p: []), Stage("a", lambda p: [])))

    def test_empty_plan_rejected(self):
        with pytest.raises(ExecError):
            ExecPlan(stages=())

"""Re-selection policies: static, best-path, C4.5 rule, MPTCP subflows."""

from __future__ import annotations

import math

import pytest

from repro.control.health import HealthConfig, PathHealth, PathState
from repro.control.policy import (
    BestPathPolicy,
    C45RulePolicy,
    MptcpSubflowPolicy,
    PolicyDecision,
    StaticPolicy,
)
from repro.control.probes import ProbeResult
from repro.errors import ControlError


def probe(label: str, rtt: float, loss: float, mbps: float | None, ok: bool = True):
    return ProbeResult(
        label=label,
        at_time=0.0,
        ok=ok,
        rtt_ms=rtt if ok else math.inf,
        loss=loss if ok else 1.0,
        throughput_mbps=mbps,
        bytes_cost=0,
    )


def health_for(labels: dict[str, PathState]) -> dict[str, PathHealth]:
    machines = {}
    for label, state in labels.items():
        machine = PathHealth(label=label, config=HealthConfig())
        machine.state = state
        machines[label] = machine
    return machines


class TestStaticPolicy:
    def test_never_moves(self):
        policy = StaticPolicy("direct")
        health = health_for({"direct": PathState.FAILED, "o1": PathState.HEALTHY})
        decision = policy.decide(0.0, health, {}, ("direct",))
        assert decision.active == ("direct",)


class TestBestPathPolicy:
    def test_picks_fastest_usable(self):
        policy = BestPathPolicy()
        health = health_for({"direct": PathState.HEALTHY, "o1": PathState.HEALTHY})
        probes = {
            "direct": probe("direct", 100.0, 0.001, 2.0),
            "o1": probe("o1", 80.0, 0.001, 5.0),
        }
        decision = policy.decide(0.0, health, probes, ())
        assert decision.active == ("o1",)

    def test_margin_holds_incumbent(self):
        policy = BestPathPolicy(switch_margin=0.10)
        health = health_for({"direct": PathState.HEALTHY, "o1": PathState.HEALTHY})
        probes = {
            "direct": probe("direct", 100.0, 0.001, 5.0),
            "o1": probe("o1", 80.0, 0.001, 5.2),  # +4%: below the margin
        }
        decision = policy.decide(0.0, health, probes, ("direct",))
        assert decision.active == ("direct",)
        assert "margin" in decision.reason

    def test_switches_past_margin(self):
        policy = BestPathPolicy(switch_margin=0.10)
        health = health_for({"direct": PathState.HEALTHY, "o1": PathState.HEALTHY})
        probes = {
            "direct": probe("direct", 100.0, 0.001, 5.0),
            "o1": probe("o1", 80.0, 0.001, 6.0),  # +20%
        }
        decision = policy.decide(0.0, health, probes, ("direct",))
        assert decision.active == ("o1",)

    def test_abandons_failed_incumbent(self):
        policy = BestPathPolicy()
        health = health_for({"direct": PathState.FAILED, "o1": PathState.HEALTHY})
        probes = {
            "direct": probe("direct", 0.0, 0.0, 0.0, ok=False),
            "o1": probe("o1", 80.0, 0.001, 1.0),
        }
        decision = policy.decide(0.0, health, probes, ("direct",))
        assert decision.active == ("o1",)

    def test_healthier_state_beats_throughput(self):
        policy = BestPathPolicy()
        health = health_for({"fast": PathState.DEGRADED, "slow": PathState.HEALTHY})
        probes = {
            "fast": probe("fast", 50.0, 0.05, 10.0),
            "slow": probe("slow", 100.0, 0.001, 3.0),
        }
        decision = policy.decide(0.0, health, probes, ())
        assert decision.active == ("slow",)

    def test_no_usable_path(self):
        policy = BestPathPolicy()
        health = health_for({"direct": PathState.FAILED})
        decision = policy.decide(0.0, health, {}, ("direct",))
        assert decision.active == ()

    def test_negative_margin_rejected(self):
        with pytest.raises(ControlError):
            BestPathPolicy(switch_margin=-0.1)


class TestC45RulePolicy:
    def _probes(self, overlay_rtt: float, overlay_loss: float):
        return {
            "direct": probe("direct", 200.0, 0.10, 2.0),
            "o1": probe("o1", overlay_rtt, overlay_loss, 4.0),
        }

    def _health(self):
        return health_for({"direct": PathState.HEALTHY, "o1": PathState.HEALTHY})

    def test_switches_when_both_cuts_met(self):
        policy = C45RulePolicy()  # 10.5% RTT cut, 12.1% loss cut
        probes = self._probes(overlay_rtt=160.0, overlay_loss=0.05)  # -20%, -50%
        decision = policy.decide(0.0, self._health(), probes, ("direct",))
        assert decision.active == ("o1",)

    def test_stays_direct_when_rtt_cut_insufficient(self):
        policy = C45RulePolicy()
        probes = self._probes(overlay_rtt=190.0, overlay_loss=0.05)  # -5% RTT
        decision = policy.decide(0.0, self._health(), probes, ("direct",))
        assert decision.active == ("direct",)

    def test_stays_direct_when_loss_cut_insufficient(self):
        policy = C45RulePolicy()
        probes = self._probes(overlay_rtt=100.0, overlay_loss=0.095)  # -5% loss
        decision = policy.decide(0.0, self._health(), probes, ("direct",))
        assert decision.active == ("direct",)

    def test_keeps_qualifying_incumbent_overlay(self):
        policy = C45RulePolicy()
        probes = self._probes(overlay_rtt=160.0, overlay_loss=0.05)
        probes["o2"] = probe("o2", 100.0, 0.01, 9.0)  # better, also qualifies
        health = self._health()
        health["o2"] = PathHealth(label="o2", config=HealthConfig())
        decision = policy.decide(0.0, health, probes, ("o1",))
        assert decision.active == ("o1",)  # hysteresis: o1 still qualifies

    def test_falls_back_when_direct_fails(self):
        policy = C45RulePolicy()
        probes = {
            "direct": probe("direct", 0.0, 0.0, 0.0, ok=False),
            "o1": probe("o1", 100.0, 0.001, 4.0),
        }
        health = health_for({"direct": PathState.FAILED, "o1": PathState.HEALTHY})
        decision = policy.decide(0.0, health, probes, ("direct",))
        assert decision.active == ("o1",)

    def test_returns_to_direct_when_rule_stops_holding(self):
        policy = C45RulePolicy()
        probes = self._probes(overlay_rtt=195.0, overlay_loss=0.099)
        decision = policy.decide(0.0, self._health(), probes, ("o1",))
        assert decision.active == ("direct",)

    def test_zero_direct_loss_means_no_switch(self):
        policy = C45RulePolicy()
        probes = {
            "direct": probe("direct", 200.0, 0.0, 2.0),
            "o1": probe("o1", 100.0, 0.0, 4.0),
        }
        decision = policy.decide(0.0, self._health(), probes, ("direct",))
        assert decision.active == ("direct",)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ControlError):
            C45RulePolicy(rtt_cut=1.5)


class TestMptcpSubflowPolicy:
    def test_all_usable_paths_active(self):
        policy = MptcpSubflowPolicy()
        health = health_for(
            {"direct": PathState.HEALTHY, "o1": PathState.HEALTHY, "o2": PathState.DEGRADED}
        )
        decision = policy.decide(0.0, health, {}, ())
        assert decision.active == ("direct", "o1", "o2")

    def test_failed_subflow_pruned_and_readded(self):
        policy = MptcpSubflowPolicy()
        health = health_for({"direct": PathState.FAILED, "o1": PathState.HEALTHY})
        decision = policy.decide(0.0, health, {}, ("direct", "o1"))
        assert decision.active == ("o1",)
        assert "prune direct" in decision.reason
        health["direct"].state = PathState.HEALTHY
        decision = policy.decide(1.0, health, {}, decision.active)
        assert decision.active == ("direct", "o1")
        assert "add direct" in decision.reason

    def test_max_subflows_keeps_best(self):
        policy = MptcpSubflowPolicy(max_subflows=2)
        health = health_for(
            {"a": PathState.HEALTHY, "b": PathState.HEALTHY, "c": PathState.HEALTHY}
        )
        probes = {
            "a": probe("a", 100.0, 0.001, 1.0),
            "b": probe("b", 100.0, 0.001, 5.0),
            "c": probe("c", 100.0, 0.001, 3.0),
        }
        decision = policy.decide(0.0, health, probes, ())
        assert decision.active == ("b", "c")

    def test_bad_cap_rejected(self):
        with pytest.raises(ControlError):
            MptcpSubflowPolicy(max_subflows=0)


class TestPolicyDecision:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ControlError):
            PolicyDecision(active=("a", "a"), reason="dup")


class FixedHistory:
    """FaultHistory stub: a fixed recent-failure count per label."""

    def __init__(self, counts: dict[str, int]) -> None:
        self.counts = counts

    def recent_failures(self, label: str, now: float) -> int:
        return self.counts.get(label, 0)


class TestFlapAwareMargin:
    def _probes(self, challenger_mbps: float):
        return {
            "direct": probe("direct", 100.0, 0.001, 5.0),
            "o1": probe("o1", 80.0, 0.001, challenger_mbps),
        }

    def _health(self):
        return health_for({"direct": PathState.HEALTHY, "o1": PathState.HEALTHY})

    def test_flapping_challenger_needs_bigger_win(self):
        policy = BestPathPolicy(switch_margin=0.10, flap_margin_per_failure=0.10)
        history = FixedHistory({"o1": 2})  # margin: 10% + 2 * 10% = 30%
        probes = self._probes(6.0)  # +20%: clears 10%, not 30%
        decision = policy.decide(
            0.0, self._health(), probes, ("direct",), history=history
        )
        assert decision.active == ("direct",)
        assert "30%" in decision.reason

    def test_big_enough_win_still_switches(self):
        policy = BestPathPolicy(switch_margin=0.10, flap_margin_per_failure=0.10)
        history = FixedHistory({"o1": 2})
        probes = self._probes(7.0)  # +40%: clears even the 30% margin
        decision = policy.decide(
            0.0, self._health(), probes, ("direct",), history=history
        )
        assert decision.active == ("o1",)

    def test_clean_history_means_base_margin(self):
        policy = BestPathPolicy(switch_margin=0.10, flap_margin_per_failure=0.10)
        history = FixedHistory({})
        probes = self._probes(6.0)  # +20% clears the base 10%
        decision = policy.decide(
            0.0, self._health(), probes, ("direct",), history=history
        )
        assert decision.active == ("o1",)

    def test_no_history_behaves_as_before(self):
        policy = BestPathPolicy(switch_margin=0.10, flap_margin_per_failure=0.10)
        probes = self._probes(6.0)
        decision = policy.decide(0.0, self._health(), probes, ("direct",))
        assert decision.active == ("o1",)

    def test_margin_off_by_default(self):
        policy = BestPathPolicy(switch_margin=0.10)
        history = FixedHistory({"o1": 50})
        probes = self._probes(6.0)
        decision = policy.decide(
            0.0, self._health(), probes, ("direct",), history=history
        )
        assert decision.active == ("o1",)  # history ignored unless enabled

    def test_negative_flap_margin_rejected(self):
        with pytest.raises(ControlError):
            BestPathPolicy(flap_margin_per_failure=-0.1)

    def test_guard_satisfies_history_protocol(self):
        from repro.control.degradation import DegradationConfig, DegradationGuard
        from repro.control.policy import FaultHistory

        guard = DegradationGuard(DegradationConfig())
        assert isinstance(guard, FaultHistory)

"""CDFs, improvement statistics, binning, table rendering."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    BinStat,
    EmpiricalCDF,
    bin_stats,
    format_series,
    format_table,
    summarize_ratios,
)
from repro.analysis.binning import LOSS_BIN_EDGES, RTT_BIN_EDGES_MS
from repro.analysis.improvement import increase_ratio
from repro.errors import AnalysisError

finite_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9)


class TestEmpiricalCDF:
    def test_evaluate(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_fraction_above(self):
        cdf = EmpiricalCDF([0.5, 1.5, 2.5, 3.5])
        assert cdf.fraction_above(1.0) == 0.75

    def test_quantiles(self):
        cdf = EmpiricalCDF(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.median == 50
        assert cdf.quantile(1.0) == 100
        with pytest.raises(AnalysisError):
            cdf.quantile(0.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalCDF([1.0, float("nan")])

    def test_series_shape(self):
        cdf = EmpiricalCDF(range(100))
        series = cdf.series(10)
        assert len(series) == 10
        ys = [y for _x, y in series]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=300))
    def test_cdf_invariants(self, values):
        """Monotone, bounded in [0,1], quantile inverts evaluate."""
        cdf = EmpiricalCDF(values)
        lo, hi = min(values), max(values)
        assert cdf.evaluate(lo - 1) == 0.0
        assert cdf.evaluate(hi) == 1.0
        prev = 0.0
        for x, y in cdf.series(20):
            assert 0.0 <= y <= 1.0
            assert y >= prev
            prev = y
        for q in (0.25, 0.5, 0.75, 1.0):
            assert cdf.evaluate(cdf.quantile(q)) >= q - 1e-9


class TestImprovementSummary:
    def test_reference_values(self):
        ratios = [0.5, 0.9, 1.1, 2.0, 4.0]
        summary = summarize_ratios(ratios)
        assert summary.count == 5
        assert summary.fraction_improved == pytest.approx(0.6)
        assert summary.mean_factor_improved == pytest.approx((1.1 + 2.0 + 4.0) / 3)
        assert summary.median_factor_improved == pytest.approx(2.0)
        assert summary.fraction_at_least_25pct == pytest.approx(0.4)

    def test_no_improved(self):
        summary = summarize_ratios([0.5, 0.8])
        assert summary.fraction_improved == 0.0
        assert summary.mean_factor_improved == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            summarize_ratios([])
        with pytest.raises(AnalysisError):
            summarize_ratios([-0.1])

    def test_increase_ratio(self):
        assert increase_ratio(10.0, 30.0) == pytest.approx(2.0)
        assert increase_ratio(10.0, 5.0) == pytest.approx(-0.5)
        with pytest.raises(AnalysisError):
            increase_ratio(0.0, 5.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_summary_bounds(self, ratios):
        summary = summarize_ratios(ratios)
        assert 0.0 <= summary.fraction_improved <= 1.0
        assert summary.fraction_at_least_25pct <= summary.fraction_improved + 1e-9


class TestBinning:
    def test_paper_bin_edges(self):
        assert RTT_BIN_EDGES_MS == (0.0, 70.0, 140.0, 210.0, 280.0)  # Fig. 9
        assert len(LOSS_BIN_EDGES) == 4  # Fig. 10

    def test_binning_reference(self):
        stats = bin_stats(
            attributes=[10, 80, 150, 300, 320],
            ratios=[0.5, 1.5, 2.0, 3.0, 5.0],
            edges=RTT_BIN_EDGES_MS,
        )
        assert [b.count for b in stats] == [1, 1, 1, 0, 2]
        last = stats[-1]
        assert last.median_ratio == pytest.approx(4.0)
        assert last.fraction_improved == 1.0
        assert stats[0].fraction_improved == 0.0

    def test_zero_loss_bin_isolated(self):
        stats = bin_stats([0.0, 0.0, 1e-3], [1.0, 2.0, 3.0], LOSS_BIN_EDGES)
        assert stats[0].count == 2  # the [0] bin
        assert stats[1].count == 1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bin_stats([], [], RTT_BIN_EDGES_MS)
        with pytest.raises(AnalysisError):
            bin_stats([1.0], [1.0, 2.0], RTT_BIN_EDGES_MS)
        with pytest.raises(AnalysisError):
            bin_stats([-5.0], [1.0], RTT_BIN_EDGES_MS)
        with pytest.raises(AnalysisError):
            bin_stats([1.0], [1.0], (10.0, 0.0))

    def test_labels(self):
        stats = bin_stats([10.0], [1.0], (0.0, 70.0))
        assert stats[0].label == "[0,70)"
        assert stats[1].label == "[70,inf)"
        assert isinstance(stats[0], BinStat)


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_validates(self):
        with pytest.raises(AnalysisError):
            format_table([], [])
        with pytest.raises(AnalysisError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("x", [(1.0, 0.5), (2.0, 1.0)])
        assert text.splitlines()[0] == "# series: x"
        assert len(text.splitlines()) == 3
        with pytest.raises(AnalysisError):
            format_series("x", [])

"""The factored-out diurnal/episode machinery (repro.net.diurnal)."""

from __future__ import annotations

import pytest

from repro.net.congestion import BackgroundLoad
from repro.net.diurnal import (
    SECONDS_PER_DAY,
    DiurnalCurve,
    Episode,
    EpisodeProcess,
    peak_hour_for_longitude,
)


class TestEpisode:
    def test_active_window_is_half_open(self):
        episode = Episode(start_s=100.0, duration_s=50.0, extra_util=0.2)
        assert episode.active_at(100.0)
        assert episode.active_at(149.9)
        assert not episode.active_at(150.0)
        assert not episode.active_at(99.9)


class TestDiurnalCurve:
    def test_peak_hour_maximizes_offset(self):
        curve = DiurnalCurve(amplitude=0.3, peak_hour=20.0)
        at_peak = curve.offset(20.0 * 3600.0)
        at_trough = curve.offset(8.0 * 3600.0)
        assert at_peak == pytest.approx(0.3)
        assert at_trough == pytest.approx(-0.3)

    def test_multiplier_never_negative(self):
        curve = DiurnalCurve(amplitude=1.5, peak_hour=0.0)
        assert curve.multiplier(12.0 * 3600.0) == 0.0
        assert curve.multiplier(0.0) == pytest.approx(2.5)


class TestEpisodeProcess:
    def test_same_seed_same_schedule(self):
        a = EpisodeProcess(rate_per_day=3.0, mean_severity=0.2, seed=11)
        b = EpisodeProcess(rate_per_day=3.0, mean_severity=0.2, seed=11)
        assert a.episodes_for_day(5) == b.episodes_for_day(5)

    def test_different_seeds_diverge(self):
        a = EpisodeProcess(rate_per_day=5.0, mean_severity=0.2, seed=11)
        b = EpisodeProcess(rate_per_day=5.0, mean_severity=0.2, seed=12)
        days = range(10)
        assert any(a.episodes_for_day(d) != b.episodes_for_day(d) for d in days)

    def test_extra_covers_day_boundary_spillover(self):
        process = EpisodeProcess(rate_per_day=0.0, mean_severity=0.2, seed=1)
        # Inject a synthetic episode that spills past midnight via the
        # cache the real sampler fills.
        spill = Episode(
            start_s=SECONDS_PER_DAY - 600.0, duration_s=1_800.0, extra_util=0.4
        )
        process._cache[0] = (spill,)
        process._cache[1] = ()
        assert process.extra_at(SECONDS_PER_DAY + 600.0) == pytest.approx(0.4)
        assert process.extra_at(SECONDS_PER_DAY + 1_300.0) == 0.0


class TestPeakHour:
    def test_greenwich_peaks_in_the_evening(self):
        assert peak_hour_for_longitude(0.0) == pytest.approx(20.0)

    def test_new_york_offset_west(self):
        # ~74 degrees west -> UTC evening shifted ~5 hours later.
        assert peak_hour_for_longitude(-74.0) == pytest.approx((20.0 + 74.0 / 15.0) % 24.0)


class TestBackgroundLoadComposition:
    def test_utilization_is_base_plus_diurnal_plus_episodes(self):
        load = BackgroundLoad(
            base_util=0.4, diurnal_amp=0.2, peak_hour=20.0,
            episode_rate_per_day=0.0, seed=3,
        )
        t = 20.0 * 3600.0
        curve = DiurnalCurve(amplitude=0.2, peak_hour=20.0)
        assert load.utilization(t) == pytest.approx(0.4 + curve.offset(t))

    def test_utilization_clamped(self):
        load = BackgroundLoad(
            base_util=0.95, diurnal_amp=0.3, peak_hour=12.0,
            episode_rate_per_day=0.0, seed=3,
        )
        assert load.utilization(12.0 * 3600.0) == pytest.approx(0.995)
        hot = BackgroundLoad(
            base_util=0.1, diurnal_amp=0.5, peak_hour=0.0,
            episode_rate_per_day=0.0, seed=3,
        )
        assert hot.utilization(12.0 * 3600.0) == 0.0

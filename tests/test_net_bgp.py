"""BGP policy routing: valley-freeness, preferences, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.net import BgpRouting, Relationship, RouteKind, Topology, TopologyConfig
from repro.net import generate_topology
from repro.net.asn import ASKind, AutonomousSystem
from repro.rand import RandomStreams


def build_line_topology():
    """stub1 -> transit1 -> t1a <peer> t1b <- transit2 <- stub2."""
    topo = Topology()

    def add(asn, name, kind, cities):
        return topo.add_as(
            AutonomousSystem(asn=asn, name=name, kind=kind, pop_cities=cities)
        )

    t1a = add(1, "t1a", ASKind.TIER1, ("new_york", "london"))
    t1b = add(2, "t1b", ASKind.TIER1, ("london", "tokyo"))
    tr1 = add(3, "tr1", ASKind.TRANSIT, ("new_york",))
    tr2 = add(4, "tr2", ASKind.TRANSIT, ("tokyo",))
    s1 = add(5, "s1", ASKind.STUB, ("new_york",))
    s2 = add(6, "s2", ASKind.STUB, ("tokyo",))
    topo.add_relation(t1a.asn, t1b.asn, Relationship.PEER)
    topo.add_relation(tr1.asn, t1a.asn, Relationship.CUSTOMER)
    topo.add_relation(tr2.asn, t1b.asn, Relationship.CUSTOMER)
    topo.add_relation(s1.asn, tr1.asn, Relationship.CUSTOMER)
    topo.add_relation(s2.asn, tr2.asn, Relationship.CUSTOMER)
    return topo


def is_valley_free(topo: Topology, path: tuple[int, ...]) -> bool:
    """Check the Gao–Rexford pattern: up* (peer)? down*."""
    if len(path) < 2:
        return True
    phase = "up"
    for a, b in zip(path, path[1:]):
        if b in topo.providers_of(a):
            step = "up"
        elif b in topo.peers_of(a):
            step = "peer"
        elif b in topo.customers_of(a):
            step = "down"
        else:  # pragma: no cover - would mean a phantom edge
            return False
        if phase == "up":
            phase = step
        elif phase == "peer":
            if step != "down":
                return False
            phase = "down"
        elif phase == "down" and step != "down":
            return False
    return True


class TestLineTopology:
    def test_stub_to_stub_crosses_core(self):
        topo = build_line_topology()
        bgp = BgpRouting(topo)
        assert bgp.as_path(5, 6) == (5, 3, 1, 2, 4, 6)

    def test_route_kinds(self):
        topo = build_line_topology()
        bgp = BgpRouting(topo)
        # transit1 reaches its customer stub1 via a customer route
        assert bgp.route(3, 5).kind is RouteKind.CUSTOMER
        # t1a reaches t1b's customer cone via the peer route
        assert bgp.route(1, 6).kind is RouteKind.PEER
        # stub1 reaches everything via its provider
        assert bgp.route(5, 6).kind is RouteKind.PROVIDER

    def test_self_route(self):
        topo = build_line_topology()
        bgp = BgpRouting(topo)
        assert bgp.as_path(5, 5) == (5,)
        assert bgp.route(5, 5).kind is RouteKind.SELF

    def test_unknown_destination(self):
        topo = build_line_topology()
        bgp = BgpRouting(topo)
        with pytest.raises(RoutingError):
            bgp.as_path(5, 999)

    def test_no_transit_through_peer_only_as(self):
        """A stub peering with another stub must not transit for it."""
        topo = build_line_topology()
        s3 = topo.add_as(
            AutonomousSystem(asn=7, name="s3", kind=ASKind.STUB, pop_cities=("new_york",))
        )
        topo.add_relation(s3.asn, 5, Relationship.PEER)  # s3 peers with s1 only
        bgp = BgpRouting(topo)
        # s3 has no providers: it can only reach s1 (its peer) and itself.
        assert bgp.as_path(7, 5) == (7, 5)
        with pytest.raises(RoutingError):
            bgp.as_path(7, 6)

    def test_prefer_customer_over_peer(self):
        """A provider reaches its customer directly even if a peer also offers it."""
        topo = build_line_topology()
        # Give stub2 a second provider: t1a directly.
        topo.add_relation(6, 1, Relationship.CUSTOMER)
        bgp = BgpRouting(topo)
        route = bgp.route(1, 6)
        assert route.kind is RouteKind.CUSTOMER
        assert route.path == (1, 6)


class TestGeneratedTopologyRouting:
    @pytest.fixture(scope="class")
    def routed(self):
        topo = generate_topology(TopologyConfig.small(), RandomStreams(seed=77))
        return topo, BgpRouting(topo)

    def test_full_reachability(self, routed):
        """Every AS pair must be connected (core is a clique)."""
        topo, bgp = routed
        asns = sorted(topo.ases)
        sample = asns[:: max(1, len(asns) // 12)]
        for dst in sample:
            routes = bgp.routes_to(dst)
            for src in asns:
                assert src in routes, f"AS{src} cannot reach AS{dst}"

    def test_all_paths_valley_free(self, routed):
        topo, bgp = routed
        asns = sorted(topo.ases)
        for dst in asns[:: max(1, len(asns) // 10)]:
            for src, route in bgp.routes_to(dst).items():
                assert is_valley_free(topo, route.path), (src, dst, route.path)

    def test_paths_are_simple(self, routed):
        """No AS appears twice on a selected path (loop-freedom)."""
        topo, bgp = routed
        asns = sorted(topo.ases)
        for dst in asns[:: max(1, len(asns) // 10)]:
            for route in bgp.routes_to(dst).values():
                assert len(set(route.path)) == len(route.path)

    def test_symmetric_computation_deterministic(self, routed):
        topo, bgp = routed
        fresh = BgpRouting(topo)
        asns = sorted(topo.ases)
        dst = asns[len(asns) // 2]
        assert {a: r.path for a, r in bgp.routes_to(dst).items()} == {
            a: r.path for a, r in fresh.routes_to(dst).items()
        }

    def test_invalidate_clears_cache(self, routed):
        _topo, bgp = routed
        dst = sorted(bgp.topology.ases)[0]
        bgp.routes_to(dst)
        assert bgp._cache
        bgp.invalidate()
        assert not bgp._cache


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_valley_freeness_property(seed):
    """Across random small topologies, all routes stay valley-free."""
    cfg = TopologyConfig(n_tier1=3, n_transit=5, n_stub=8, n_academic=2, n_content=1)
    topo = generate_topology(cfg, RandomStreams(seed=seed))
    bgp = BgpRouting(topo)
    asns = sorted(topo.ases)
    dst = asns[seed % len(asns)]
    for route in bgp.routes_to(dst).values():
        assert is_valley_free(topo, route.path)
        assert len(set(route.path)) == len(route.path)

"""Internet facade: construction, hosts, path resolution, clock, failures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, RoutingError
from repro.net import Internet, LinkClass
from repro.net.world import HOST_ID_BASE


class TestConstruction:
    def test_every_pop_has_router(self, small_internet):
        for asys in small_internet.topology.ases.values():
            for city_name in asys.pop_cities:
                router = small_internet.routers.at(asys.asn, city_name)
                assert router.asn == asys.asn

    def test_cloud_backbone_links_exist(self, small_internet):
        backbone = small_internet.links_of_class(LinkClass.CLOUD_BACKBONE)
        # 5 DCs, sparse backbone: at least a ring, at most a full mesh.
        assert 5 <= len(backbone) <= 10

    def test_t1_peering_links_exist(self, small_internet):
        assert small_internet.links_of_class(LinkClass.T1_PEERING)

    def test_core_runs_hotter_than_cloud(self, small_internet):
        t = 12 * 3600.0
        core = small_internet.links_of_class(LinkClass.T1_PEERING)
        cloud = small_internet.links_of_class(LinkClass.CLOUD_BACKBONE)
        core_util = sum(l.utilization(t) for l in core) / len(core)
        cloud_util = sum(l.utilization(t) for l in cloud) / len(cloud)
        assert core_util > cloud_util + 0.2

    def test_deterministic_build(self, small_internet):
        """Same seed -> identical link parameters."""
        from repro.net import TopologyConfig, generate_topology
        from repro.net.asn import ASKind
        from repro.rand import RandomStreams

        streams = RandomStreams(seed=1234)
        topo = generate_topology(TopologyConfig.small(), streams)
        t1s = [a.asn for a in topo.ases_of_kind(ASKind.TIER1)]
        transits = [a.asn for a in topo.ases_of_kind(ASKind.TRANSIT)]
        topo.add_cloud_as(
            "softcloud",
            ("dallas", "amsterdam", "tokyo", "san_jose", "washington_dc"),
            t1s[:2],
            transits,
        )
        twin = Internet(topo, streams)
        for link_id, link in small_internet.links_by_id.items():
            if link.link_class is LinkClass.HOST_ACCESS:
                continue  # twin has no hosts attached
            other = twin.links_by_id[link_id]
            assert other.capacity_mbps == link.capacity_mbps
            assert other.base_loss == link.base_loss
            assert other.load.base_util == link.load.base_util


class TestHosts:
    def test_attach_creates_access_link(self, small_internet):
        host = small_internet.host("client")
        assert host.access_link.link_class is LinkClass.HOST_ACCESS
        assert host.access_link.capacity_mbps == host.nic_mbps
        assert host.host_id >= HOST_ID_BASE

    def test_duplicate_name_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            small_internet.attach_host("client", small_internet.host("client").asn)

    def test_unknown_host_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            small_internet.host("ghost")

    def test_explicit_access_parameters(self, small_internet):
        host = small_internet.attach_host(
            "pinned",
            small_internet.host("server").asn,
            nic_mbps=1_000.0,
            access_delay_ms=1.5,
            access_base_loss=2e-4,
        )
        assert host.access_link.prop_delay_ms == 1.5
        assert host.access_link.base_loss == 2e-4
        assert host.access_link.capacity_mbps == 1_000.0


class TestPathResolution:
    def test_path_endpoints(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        client = small_internet.host("client")
        server = small_internet.host("server")
        assert path.router_ids[0] == client.host_id
        assert path.router_ids[-1] == server.host_id
        assert path.links[0] is client.access_link
        assert path.links[-1] is server.access_link

    def test_path_is_link_consistent(self, small_internet):
        """Consecutive links must share the router between them."""
        path = small_internet.resolve_path("client", "server")
        for i, (left, right) in enumerate(zip(path.links, path.links[1:])):
            shared_router = path.router_ids[i + 1]
            assert shared_router in (left.router_a, left.router_b)
            assert shared_router in (right.router_a, right.router_b)

    def test_path_cached(self, small_internet):
        p1 = small_internet.resolve_path("client", "server")
        p2 = small_internet.resolve_path("client", "server")
        assert p1 is p2

    def test_self_path_rejected(self, small_internet):
        with pytest.raises(RoutingError):
            small_internet.resolve_path("client", "client")

    def test_overlay_detour_differs_from_direct(self, small_internet):
        direct = small_internet.resolve_path("client", "server")
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        overlay = leg1.concatenate(leg2)
        assert set(overlay.router_ids) != set(direct.router_ids)
        # Overlay traverses the cloud VM.
        assert small_internet.host("vm").host_id in overlay.router_ids

    def test_metrics_respond_to_time(self, small_internet):
        """Diurnal load must move path metrics across the day."""
        path = small_internet.resolve_path("client", "server")
        rtts = {round(path.metrics(h * 3600.0).rtt_ms, 3) for h in range(0, 24, 3)}
        assert len(rtts) > 1


class TestClockAndFailures:
    def test_clock_advances(self, small_internet):
        assert small_internet.now == 0.0
        small_internet.advance(10.0)
        assert small_internet.now == 10.0
        with pytest.raises(ConfigError):
            small_internet.advance(-1.0)

    def test_set_time(self, small_internet):
        small_internet.set_time(3_600.0)
        assert small_internet.now == 3_600.0
        with pytest.raises(ConfigError):
            small_internet.set_time(-5.0)

    def test_rewind_invalidates_path_cache(self, small_internet):
        # A backwards jump is a rewind-and-replay: any path resolved
        # under later fault state must not be served after it.
        before = small_internet.resolve_path("client", "server")
        small_internet.set_time(100.0)
        small_internet.set_time(0.0)
        after = small_internet.resolve_path("client", "server")
        assert after is not before
        assert after.router_ids == before.router_ids

    def test_forward_jump_keeps_path_cache(self, small_internet):
        before = small_internet.resolve_path("client", "server")
        small_internet.set_time(100.0)
        small_internet.set_time(200.0)
        assert small_internet.resolve_path("client", "server") is before

    def test_scheduled_failure_kills_and_restores_path(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        victim = path.links[len(path.links) // 2]
        small_internet.failures.schedule(victim.link_id, start_s=100.0, duration_s=50.0)

        small_internet.set_time(99.0)
        assert path.is_alive()
        small_internet.set_time(120.0)
        assert not path.is_alive()
        assert path.metrics(small_internet.now).loss == 1.0
        small_internet.set_time(200.0)
        assert path.is_alive()

    def test_failure_on_unknown_link_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            small_internet.failures.schedule(999_999, start_s=0.0, duration_s=1.0)

"""Workload models and the report generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError
from repro.experiments.workloads import (
    BulkTransferModel,
    InteractiveQualityModel,
    OfficeWorkload,
)
from repro.net.path import PathMetrics


def metrics(rtt=100.0, loss=1e-4):
    return PathMetrics(rtt_ms=rtt, loss=loss, available_bw_mbps=100.0, capacity_mbps=100.0)


class TestBulkTransfers:
    def test_sizes_positive_and_heavy_tailed(self):
        model = BulkTransferModel()
        sizes = model.sample_sizes(np.random.default_rng(1), 500)
        assert all(s >= 1 for s in sizes)
        assert max(sizes) > 10 * sorted(sizes)[len(sizes) // 2]  # long tail

    def test_median_near_target(self):
        model = BulkTransferModel(median_bytes=1e7, sigma=0.5)
        sizes = model.sample_sizes(np.random.default_rng(2), 2_000)
        median = sorted(sizes)[len(sizes) // 2]
        assert median == pytest.approx(1e7, rel=0.2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BulkTransferModel(median_bytes=0)
        with pytest.raises(ConfigError):
            BulkTransferModel(sigma=0)
        with pytest.raises(ConfigError):
            BulkTransferModel().sample_sizes(np.random.default_rng(1), 0)


class TestInteractiveQuality:
    def test_perfect_path_scores_100(self):
        model = InteractiveQualityModel()
        assert model.score(metrics(rtt=50.0, loss=0.0)) == 100.0

    def test_rtt_penalty(self):
        model = InteractiveQualityModel()
        good = model.score(metrics(rtt=100.0))
        bad = model.score(metrics(rtt=400.0))
        assert bad < good

    def test_loss_penalty_logarithmic(self):
        model = InteractiveQualityModel()
        p1 = model.score(metrics(loss=1e-3))
        p2 = model.score(metrics(loss=1e-2))
        p3 = model.score(metrics(loss=1e-1))
        assert p1 > p2 > p3
        # Each decade costs the same.
        assert (p1 - p2) == pytest.approx(p2 - p3, abs=1e-6)

    def test_score_bounded(self):
        model = InteractiveQualityModel()
        assert model.score(metrics(rtt=10_000.0, loss=0.5)) == 0.0

    def test_acceptable_threshold(self):
        model = InteractiveQualityModel()
        assert model.acceptable(metrics(rtt=50.0, loss=0.0))
        assert not model.acceptable(metrics(rtt=1_000.0, loss=0.1))

    def test_overlay_improves_session_quality(self, small_internet):
        """The Sec. II-B claim: RTT/loss gains help interactive apps."""
        model = InteractiveQualityModel()
        direct = small_internet.resolve_path("client", "server")
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        overlay = leg1.concatenate(leg2)
        t = 6 * 3_600.0
        direct_score = model.score(direct.metrics(t))
        overlay_score = model.score(overlay.metrics(t))
        # On this seeded pair the overlay is cleaner and shorter.
        assert overlay_score >= direct_score


class TestOfficeWorkload:
    def test_daily_volume(self):
        workload = OfficeWorkload()
        volume = workload.daily_bulk_bytes(np.random.default_rng(3))
        assert volume > 0

    def test_session_times_in_day(self):
        workload = OfficeWorkload()
        times = workload.session_times(np.random.default_rng(4))
        assert len(times) == workload.interactive_sessions_per_day
        assert all(0.0 <= t < 86_400.0 for t in times)
        assert times == sorted(times)

    def test_empty_workload(self):
        workload = OfficeWorkload(bulk_transfers_per_day=0, interactive_sessions_per_day=0)
        assert workload.daily_bulk_bytes(np.random.default_rng(5)) == 0
        assert workload.session_times(np.random.default_rng(5)) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            OfficeWorkload(bulk_transfers_per_day=-1)


class TestReport:
    def test_report_covers_all_sections(self, tmp_path):
        from repro.report import write_report

        target = write_report(tmp_path / "report.md", seed=3, scale="small")
        text = target.read_text()
        for marker in (
            "Web-server campaign",
            "Controlled senders",
            "Persistency",
            "Path diversity",
            "Who gains",
            "C4.5",
            "Economics",
            "Placement planning",
            "Multi-hop overlays",
        ):
            assert marker in text, f"missing section {marker}"
        assert text.startswith("# CRONets reproduction report")

    def test_report_path_validated(self, tmp_path):
        from repro.report import write_report

        with pytest.raises(ReproError):
            write_report(tmp_path / "report.txt")

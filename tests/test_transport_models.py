"""Mathis model, steady-state throughput, TcpConnection, SplitTcpChain."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TransportError
from repro.net.path import PathMetrics
from repro.transport import (
    MATHIS_CONSTANT,
    SplitTcpChain,
    TcpConnection,
    TcpParams,
    mathis_throughput_mbps,
    steady_state_throughput_mbps,
)
from repro.transport.throughput import MIN_THROUGHPUT_MBPS, FlowStats


class TestMathis:
    def test_reference_value(self):
        # MSS 1460 B, RTT 100 ms, p = 1e-4: (1460*8/0.1s)*sqrt(1.5)/0.01
        expected = 1460 * 8 / 0.1 * MATHIS_CONSTANT / math.sqrt(1e-4) / 1e6
        assert mathis_throughput_mbps(1460, 100.0, 1e-4) == pytest.approx(expected)

    def test_zero_loss_diverges(self):
        assert mathis_throughput_mbps(1460, 100.0, 0.0) == math.inf

    def test_halving_rtt_doubles_throughput(self):
        """The split-TCP lever (Sec. II, Eq. 1)."""
        full = mathis_throughput_mbps(1460, 200.0, 1e-3)
        half = mathis_throughput_mbps(1460, 100.0, 1e-3)
        assert half == pytest.approx(2 * full)

    def test_invalid_inputs(self):
        with pytest.raises(TransportError):
            mathis_throughput_mbps(0, 100.0, 0.1)
        with pytest.raises(TransportError):
            mathis_throughput_mbps(1460, 0.0, 0.1)
        with pytest.raises(TransportError):
            mathis_throughput_mbps(1460, 100.0, 1.5)

    @given(
        st.floats(min_value=1.0, max_value=1_000.0),
        st.floats(min_value=1e-6, max_value=0.5),
        st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_monotone_decreasing_in_loss(self, rtt, p1, p2):
        lo, hi = sorted((p1, p2))
        assert mathis_throughput_mbps(1460, rtt, lo) >= mathis_throughput_mbps(1460, rtt, hi)

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_monotone_decreasing_in_rtt(self, r1, r2, p):
        lo, hi = sorted((r1, r2))
        assert mathis_throughput_mbps(1460, lo, p) >= mathis_throughput_mbps(1460, hi, p)


def metrics(rtt=100.0, loss=1e-4, avail=1_000.0, cap=1_000.0):
    return PathMetrics(rtt_ms=rtt, loss=loss, available_bw_mbps=avail, capacity_mbps=cap)


class TestSteadyState:
    def test_loss_limited(self):
        m = metrics(loss=1e-2)
        got = steady_state_throughput_mbps(m, TcpParams(rwnd_bytes=64 * 1_048_576))
        assert got == pytest.approx(mathis_throughput_mbps(1460, 100.0, 1e-2), rel=1e-6)

    def test_rwnd_limited_on_clean_path(self):
        """Zero-loss, long-RTT paths hit the receive-window wall."""
        m = metrics(rtt=200.0, loss=0.0)
        params = TcpParams(rwnd_bytes=262_144)  # 256 KB
        got = steady_state_throughput_mbps(m, params)
        assert got == pytest.approx(262_144 * 8 / 0.2 / 1e6)  # ~10.5 Mbps

    def test_bandwidth_limited(self):
        m = metrics(rtt=10.0, loss=0.0, avail=50.0)
        got = steady_state_throughput_mbps(m, TcpParams(rwnd_bytes=64 * 1_048_576))
        assert got == pytest.approx(50.0)

    def test_efficiency_shaves(self):
        m = metrics(rtt=10.0, loss=0.0, avail=100.0)
        full = steady_state_throughput_mbps(m, TcpParams())
        shaved = steady_state_throughput_mbps(m, TcpParams(efficiency=0.9))
        assert shaved == pytest.approx(0.9 * full)

    def test_total_loss_is_zero_throughput(self):
        assert steady_state_throughput_mbps(metrics(loss=1.0), TcpParams()) == 0.0

    def test_floor(self):
        m = metrics(loss=0.9)
        assert steady_state_throughput_mbps(m, TcpParams()) >= MIN_THROUGHPUT_MBPS

    @given(
        st.floats(min_value=5.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=0.2),
        st.floats(min_value=1.0, max_value=10_000.0),
    )
    def test_never_exceeds_available_bandwidth(self, rtt, loss, avail):
        m = metrics(rtt=rtt, loss=loss, avail=avail, cap=10_000.0)
        got = steady_state_throughput_mbps(m, TcpParams())
        assert got <= max(avail, MIN_THROUGHPUT_MBPS) + 1e-9


class TestTcpParams:
    def test_rejects_tiny_rwnd(self):
        with pytest.raises(TransportError):
            TcpParams(mss_bytes=1460, rwnd_bytes=100)

    def test_with_mss(self):
        p = TcpParams().with_mss(1436)
        assert p.mss_bytes == 1436
        assert p.rwnd_bytes == TcpParams().rwnd_bytes

    def test_with_efficiency(self):
        assert TcpParams().with_efficiency(0.95).efficiency == 0.95
        with pytest.raises(TransportError):
            TcpParams(efficiency=0.0)


class TestFlowStats:
    def test_retransmission_rate(self):
        stats = FlowStats(
            duration_s=30.0,
            bytes_acked=1_000_000,
            bytes_retransmitted=500,
            avg_rtt_ms=80.0,
            throughput_mbps=1.0,
        )
        assert stats.retransmission_rate == pytest.approx(5e-4)

    def test_zero_bytes_rate(self):
        stats = FlowStats(
            duration_s=1.0, bytes_acked=0, bytes_retransmitted=0, avg_rtt_ms=1.0,
            throughput_mbps=0.0,
        )
        assert stats.retransmission_rate == 0.0

    def test_validation(self):
        with pytest.raises(TransportError):
            FlowStats(
                duration_s=0.0, bytes_acked=0, bytes_retransmitted=0, avg_rtt_ms=1.0,
                throughput_mbps=0.0,
            )


class TestTcpConnection:
    def test_run_reports_consistent_stats(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        stats = TcpConnection(path).run(3_600.0, 30.0)
        assert stats.duration_s == 30.0
        assert stats.throughput_mbps > 0
        assert stats.bytes_acked == pytest.approx(
            stats.throughput_mbps * 1e6 / 8 * 30.0, rel=0.01
        )
        assert stats.avg_rtt_ms > 0

    def test_run_validates_inputs(self, small_internet):
        conn = TcpConnection(small_internet.resolve_path("client", "server"))
        with pytest.raises(TransportError):
            conn.run(0.0, -1.0)
        with pytest.raises(TransportError):
            conn.run(0.0, 10.0, samples=0)

    def test_transfer_slower_than_steady_state(self, small_internet):
        """Slow start makes the effective file rate < the steady rate."""
        path = small_internet.resolve_path("client", "server")
        conn = TcpConnection(path)
        stats = conn.transfer(3_600.0, 100_000_000)
        assert stats.bytes_acked == 100_000_000
        assert stats.throughput_mbps <= conn.throughput_at(3_600.0) + 1e-9

    def test_transfer_validates_size(self, small_internet):
        conn = TcpConnection(small_internet.resolve_path("client", "server"))
        with pytest.raises(TransportError):
            conn.transfer(0.0, 0)


class TestSplitTcpChain:
    def test_needs_two_segments(self, small_internet):
        leg = small_internet.resolve_path("client", "vm")
        with pytest.raises(TransportError):
            SplitTcpChain(segments=(leg,))

    def test_split_bounded_by_discrete(self, small_internet):
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        chain = SplitTcpChain(segments=(leg1, leg2))
        t = 3_600.0
        assert chain.throughput_at(t) <= chain.discrete_bound_at(t)
        assert chain.throughput_at(t) == pytest.approx(
            chain.discrete_bound_at(t) * chain.proxy_efficiency
        )

    def test_split_beats_plain_tunnel_on_long_paths(self, small_internet):
        """The Mathis RTT lever: per-segment CC outperforms end-to-end."""
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        overlay = leg1.concatenate(leg2)
        t = 3_600.0
        plain = TcpConnection(overlay).throughput_at(t)
        split = SplitTcpChain(segments=(leg1, leg2)).throughput_at(t)
        assert split > plain

    def test_run_stats(self, small_internet):
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        chain = SplitTcpChain(segments=(leg1, leg2))
        stats = chain.run(3_600.0, 30.0)
        t = 3_600.0
        assert stats.avg_rtt_ms == pytest.approx(
            leg1.metrics(t).rtt_ms + leg2.metrics(t).rtt_ms, rel=0.2
        )
        assert stats.throughput_mbps > 0

    def test_multi_hop_chain(self, small_internet):
        """Sec. VII-B: more relays, more split points, more shave."""
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        chain2 = SplitTcpChain(segments=(leg1, leg2))
        chain3 = SplitTcpChain(segments=(leg1, leg2, leg1))
        assert chain3.relay_count == 2
        assert chain3.proxy_efficiency**2 < chain2.proxy_efficiency

"""Cross-cutting property-based tests on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.congestion import BackgroundLoad
from repro.net.links import Link, LinkClass
from repro.net.path import RouterPath
from repro.transport.cc import RenoCC
from repro.transport.fluid import FluidSimulator
from repro.transport.mathis import mathis_throughput_mbps
from repro.transport.throughput import TcpParams, steady_state_throughput_mbps


def make_link(link_id, a, b, capacity=100.0, delay=10.0, loss=0.0, util=0.0):
    return Link(
        link_id=link_id,
        router_a=a,
        router_b=b,
        capacity_mbps=capacity,
        prop_delay_ms=delay,
        base_loss=loss,
        link_class=LinkClass.ACCESS,
        load=BackgroundLoad(base_util=util, diurnal_amp=0.0, episode_rate_per_day=0.0),
    )


def make_path(links):
    ids = [links[0].router_a] + [l.router_b for l in links]
    return RouterPath(src_name="a", dst_name="b", router_ids=tuple(ids), links=tuple(links))


class TestPathMetricComposition:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),  # delay
                st.floats(min_value=0.0, max_value=0.01),  # loss
                # Below the queueing knee, so RTT is purely propagation.
                st.floats(min_value=0.0, max_value=0.55),  # util
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_composition_bounds(self, hop_specs):
        """RTT adds; loss composes sub-additively but super-max;
        available bandwidth is the min."""
        links = [
            make_link(i + 1, i + 1, i + 2, delay=d, loss=p, util=u)
            for i, (d, p, u) in enumerate(hop_specs)
        ]
        path = make_path(links)
        metrics = path.metrics(0.0)
        assert metrics.rtt_ms == pytest.approx(2 * sum(d for d, _p, _u in hop_specs))
        max_loss = max(p for _d, p, _u in hop_specs)
        sum_loss = sum(p for _d, p, _u in hop_specs)
        assert max_loss - 1e-12 <= metrics.loss <= sum_loss + 1e-12
        assert metrics.available_bw_mbps <= min(l.available_bw_mbps(0.0) for l in links) + 1e-9

    @given(st.floats(min_value=0.0, max_value=0.02))
    @settings(max_examples=30, deadline=None)
    def test_longer_path_never_faster(self, loss):
        """Adding a hop can only hurt steady-state throughput."""
        short = make_path([make_link(1, 1, 2, loss=loss)])
        long = make_path(
            [make_link(1, 1, 2, loss=loss), make_link(2, 2, 3, loss=loss)]
        )
        params = TcpParams()
        fast = steady_state_throughput_mbps(short.metrics(0.0), params)
        slow = steady_state_throughput_mbps(long.metrics(0.0), params)
        assert slow <= fast + 1e-9


class TestFluidConservation:
    @given(
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=10.0, max_value=200.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_flows_never_exceed_shared_capacity(self, n_flows, capacity, seed):
        """Conservation: goodput across flows <= bottleneck capacity."""
        link = make_link(1, 1, 2, capacity=capacity, delay=20.0)
        path = make_path([link])
        sim = FluidSimulator(at_time=0.0, rng=np.random.default_rng(seed), tick_s=0.01)
        flows = [
            sim.add_flow(path, RenoCC(), rwnd_bytes=8_388_608) for _ in range(n_flows)
        ]
        results = sim.run(10.0)
        total = sum(results[f.flow_id].throughput_mbps for f in flows)
        assert total <= capacity * 1.02  # small tick-quantization slack

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_goodput_positive_on_live_path(self, seed):
        path = make_path([make_link(1, 1, 2, loss=1e-4)])
        sim = FluidSimulator(at_time=0.0, rng=np.random.default_rng(seed), tick_s=0.01)
        flow = sim.add_flow(path, RenoCC())
        stats = sim.run(5.0)[flow.flow_id]
        assert stats.throughput_mbps > 0
        assert stats.bytes_acked > 0


class TestMathisScaling:
    @given(
        st.floats(min_value=1e-6, max_value=0.1),
        st.floats(min_value=2.0, max_value=16.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_quarter_loss_doubles_throughput(self, loss, factor):
        """BW ~ 1/sqrt(p): scaling p by k scales BW by 1/sqrt(k)."""
        base = mathis_throughput_mbps(1_460, 100.0, loss)
        scaled = mathis_throughput_mbps(1_460, 100.0, min(loss * factor, 0.99))
        if loss * factor <= 0.99:
            assert scaled == pytest.approx(base / factor**0.5, rel=1e-6)

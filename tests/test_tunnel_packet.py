"""Packet-level tunnel + NAT pipeline (the Fig. 1 round trip)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TunnelError
from repro.tunnel import MasqueradeNat, TunnelSpec, TunnelType
from repro.tunnel.packet import (
    EncapsulatedPacket,
    Packet,
    decapsulate,
    encapsulate,
    masquerade_outbound,
    masquerade_return,
)


def make_packet(payload=1_000, src_port=40_001):
    return Packet(
        src_ip="10.1.1.1",
        dst_ip="203.0.113.9",
        protocol="tcp",
        src_port=src_port,
        dst_port=80,
        payload_bytes=payload,
    )


class TestPacket:
    def test_wire_size(self):
        assert make_packet(payload=1_000).wire_bytes == 20 + 20 + 1_000

    def test_udp_header_smaller(self):
        tcp = make_packet()
        udp = Packet(
            src_ip="10.1.1.1", dst_ip="203.0.113.9", protocol="udp",
            src_port=40_001, dst_port=53, payload_bytes=1_000,
        )
        assert udp.wire_bytes < tcp.wire_bytes

    def test_validation(self):
        with pytest.raises(TunnelError):
            make_packet(payload=-1)
        with pytest.raises(TunnelError):
            make_packet(src_port=0)


class TestEncapsulation:
    def test_roundtrip(self):
        tunnel = TunnelSpec(tunnel_type=TunnelType.GRE)
        packet = make_packet()
        wrapped = encapsulate(packet, tunnel, "10.1.1.1", "198.51.100.1")
        assert wrapped.wire_bytes == packet.wire_bytes + 24
        assert decapsulate(wrapped, "198.51.100.1") == packet

    def test_mtu_enforced(self):
        tunnel = TunnelSpec(tunnel_type=TunnelType.IPSEC_ESP)
        oversized = make_packet(payload=1_460)  # fits plain MTU, not tunnel
        with pytest.raises(TunnelError):
            encapsulate(oversized, tunnel, "10.1.1.1", "198.51.100.1")

    def test_max_inner_mss_fits_exactly(self):
        tunnel = TunnelSpec(tunnel_type=TunnelType.GRE)
        packet = make_packet(payload=tunnel.inner_mss_bytes)
        wrapped = encapsulate(packet, tunnel, "10.1.1.1", "198.51.100.1")
        assert wrapped.wire_bytes == tunnel.mtu_bytes
        assert wrapped.fits_mtu()

    def test_misaddressed_decap_rejected(self):
        tunnel = TunnelSpec(tunnel_type=TunnelType.GRE)
        wrapped = encapsulate(make_packet(), tunnel, "10.1.1.1", "198.51.100.1")
        with pytest.raises(TunnelError):
            decapsulate(wrapped, "198.51.100.99")


class TestFullRelayRoundTrip:
    """Drive one packet through the Fig. 1 pipeline and back."""

    def test_round_trip(self):
        tunnel = TunnelSpec(tunnel_type=TunnelType.GRE)
        nat = MasqueradeNat("198.51.100.1")

        # Client -> (tunnel) -> overlay node.
        original = make_packet()
        wrapped = encapsulate(original, tunnel, original.src_ip, "198.51.100.1")
        at_node = decapsulate(wrapped, "198.51.100.1")

        # Node NATs and forwards to the server: source is now the node.
        outbound = masquerade_outbound(at_node, nat)
        assert outbound.src_ip == "198.51.100.1"
        assert outbound.dst_ip == original.dst_ip
        assert outbound.src_port != original.src_port or outbound.src_ip != original.src_ip

        # Server replies to what it saw (no tunnel on the server side!).
        reply = Packet(
            src_ip=outbound.dst_ip,
            dst_ip=outbound.src_ip,
            protocol="tcp",
            src_port=outbound.dst_port,
            dst_port=outbound.src_port,
            payload_bytes=500,
        )

        # Node un-NATs the reply back toward the client.
        returned = masquerade_return(reply, nat)
        assert returned.dst_ip == original.src_ip
        assert returned.dst_port == original.src_port

    def test_unsolicited_return_rejected(self):
        nat = MasqueradeNat("198.51.100.1")
        stray = Packet(
            src_ip="203.0.113.9", dst_ip="198.51.100.1", protocol="tcp",
            src_port=80, dst_port=33_000, payload_bytes=10,
        )
        with pytest.raises(TunnelError):
            masquerade_return(stray, nat)

    @given(
        st.integers(min_value=1, max_value=65_535),
        st.integers(min_value=0, max_value=1_400),
    )
    def test_round_trip_property(self, src_port, payload):
        """Any flow survives the encap/NAT/return pipeline unchanged."""
        tunnel = TunnelSpec(tunnel_type=TunnelType.GRE)
        nat = MasqueradeNat("198.51.100.1")
        original = make_packet(payload=payload, src_port=src_port)
        wrapped = encapsulate(original, tunnel, original.src_ip, "198.51.100.1")
        outbound = masquerade_outbound(decapsulate(wrapped, "198.51.100.1"), nat)
        reply = Packet(
            src_ip=outbound.dst_ip, dst_ip=outbound.src_ip, protocol="tcp",
            src_port=outbound.dst_port, dst_port=outbound.src_port, payload_bytes=1,
        )
        returned = masquerade_return(reply, nat)
        assert (returned.dst_ip, returned.dst_port) == (original.src_ip, original.src_port)

"""Property tests: the fastpath mirror is invisible in study output.

For each study (chaos, demand, controlled) and several seeds, the
dumped result JSON must be byte-identical between

* object mode (``REPRO_FASTPATH=0`` — the scalar per-link walk),
* fastpath at 1 worker, and
* fastpath at 8 workers (exec backends fork, so workers inherit the
  parent's mode choice).

Serial entry points are compared against serial references and exec
entry points against exec references — the controlled study's serial
and exec ports draw retransmission noise from differently scoped
streams, a (documented) difference orthogonal to the mirror.  Byte
equality of the serialized artifact is deliberately the bar: it is
what the exec cache keys on and what the paper-repro pipeline diffs
between runs.
"""

from __future__ import annotations

import pytest

from repro.exec.runner import ExecConfig, ExecRunner
from repro.experiments.chaos_exp import ChaosConfig, run_chaos, run_chaos_exec
from repro.experiments.controlled import (
    ControlledConfig,
    run_controlled,
    run_controlled_exec,
)
from repro.experiments.demand_exp import DemandConfig, run_demand, run_demand_exec
from repro.io import dump_json

SEEDS = (3, 11)


def _dump(tmp_path, tag, result) -> bytes:
    return dump_json(result, tmp_path / f"{tag}.json").read_bytes()


def _runner(tmp_path, tag, workers) -> ExecRunner:
    return ExecRunner(
        ExecConfig(workers=workers, cache_dir=tmp_path / f"cache-{tag}")
    )


def _chaos_config(seed: int) -> ChaosConfig:
    return ChaosConfig(
        seed=seed,
        scale="small",
        scenarios=("as-outage",),
        duration_s=600.0,
        tick_s=10.0,
        probe_interval_s=30.0,
    )


def _demand_config(seed: int) -> DemandConfig:
    return DemandConfig(
        seed=seed,
        levels=(1.0, 8.0),
        epochs=2,
        policies=("best-path", "anycast"),
        rounds=3,
    )


def _controlled_config(seed: int) -> ControlledConfig:
    return ControlledConfig(seed=seed, scale="small", n_clients=2)


STUDIES = {
    "chaos": (_chaos_config, run_chaos, run_chaos_exec),
    "demand": (_demand_config, run_demand, run_demand_exec),
    "controlled": (_controlled_config, run_controlled, run_controlled_exec),
}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("study", sorted(STUDIES))
def test_fastpath_output_byte_identical_to_object_mode(
    study, seed, tmp_path, monkeypatch
):
    make_config, run_serial, run_exec = STUDIES[study]

    monkeypatch.setenv("REPRO_FASTPATH", "0")
    ref_serial = _dump(tmp_path, f"{study}-obj-serial", run_serial(make_config(seed)))
    ref_exec = _dump(
        tmp_path,
        f"{study}-obj-exec",
        run_exec(make_config(seed), _runner(tmp_path, f"{study}-obj", 1)),
    )

    monkeypatch.setenv("REPRO_FASTPATH", "1")
    fast_serial = _dump(
        tmp_path, f"{study}-fast-serial", run_serial(make_config(seed))
    )
    assert fast_serial == ref_serial, (
        f"{study} seed {seed}: serial fastpath output differs from object mode"
    )
    for workers in (1, 8):
        fast = _dump(
            tmp_path,
            f"{study}-fast-w{workers}",
            run_exec(
                make_config(seed), _runner(tmp_path, f"{study}-{workers}", workers)
            ),
        )
        assert fast == ref_exec, (
            f"{study} seed {seed}: fastpath output at {workers} workers "
            "differs from object mode"
        )

"""Measurement tools: iperf, tstat, traceroute, campaigns."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.measure import MeasurementCampaign, iperf, traceroute, tstat
from repro.measure.traceroute import as_level_path
from repro.transport import TcpConnection
from repro.transport.throughput import FlowStats


class TestIperf:
    def test_report_matches_connection(self, small_internet):
        conn = TcpConnection(small_internet.resolve_path("client", "server"))
        report = iperf(conn, start_time=3_600.0, duration_s=30.0)
        assert report.duration_s == 30.0
        assert report.throughput_mbps > 0
        assert report.transferred_bytes > 0

    def test_rejects_bad_duration(self, small_internet):
        conn = TcpConnection(small_internet.resolve_path("client", "server"))
        with pytest.raises(MeasurementError):
            iperf(conn, 0.0, duration_s=0.0)


class TestTstat:
    def test_summary(self):
        stats = FlowStats(
            duration_s=30.0,
            bytes_acked=2_000_000,
            bytes_retransmitted=400,
            avg_rtt_ms=120.0,
            throughput_mbps=0.53,
        )
        report = tstat(stats)
        assert report.retransmission_rate == pytest.approx(2e-4)
        assert report.avg_rtt_ms == 120.0
        assert report.bytes_total == 2_000_000


class TestTraceroute:
    def test_hops_cover_path(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        hops = traceroute(small_internet, path, at_time=3_600.0)
        assert len(hops) == path.hop_count
        assert hops[0].label == "client"
        assert hops[-1].label == "server"

    def test_rtt_monotone_nondecreasing(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        hops = traceroute(small_internet, path, at_time=3_600.0)
        rtts = [hop.rtt_ms for hop in hops]
        assert rtts == sorted(rtts)
        assert rtts[0] == 0.0

    def test_as_level_path_dedupes(self, small_internet):
        path = small_internet.resolve_path("client", "server")
        sequence = as_level_path(small_internet, path)
        assert sequence[0] == small_internet.host("client").asn
        assert sequence[-1] == small_internet.host("server").asn
        # no immediate repeats
        assert all(a != b for a, b in zip(sequence, sequence[1:]))


class TestCampaign:
    def test_runs_all_iterations(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=600.0, iterations=4)
        seen_times = []

        def task(at_time: float) -> float:
            seen_times.append(at_time)
            return at_time

        results = campaign.run({"t": task})
        assert len(results["t"]) == 4
        assert seen_times == [0.0, 600.0, 1_200.0, 1_800.0]
        assert [s.iteration for s in results["t"]] == [0, 1, 2, 3]

    def test_advances_clock_between_iterations(self, small_internet):
        campaign = MeasurementCampaign(small_internet, interval_s=100.0, iterations=3)
        campaign.run({"noop": lambda t: None})
        assert small_internet.now == 200.0  # advanced between, not after

    def test_validation(self, small_internet):
        with pytest.raises(MeasurementError):
            MeasurementCampaign(small_internet, interval_s=0.0, iterations=1)
        with pytest.raises(MeasurementError):
            MeasurementCampaign(small_internet, interval_s=1.0, iterations=0)
        campaign = MeasurementCampaign(small_internet, interval_s=1.0, iterations=1)
        with pytest.raises(MeasurementError):
            campaign.run({})

"""Per-city demand models: rates, Little's law, seeded sampling."""

from __future__ import annotations

import pytest

from repro.demand.model import CityDemand, DemandModel
from repro.errors import ConfigError
from repro.net.diurnal import DiurnalCurve, EpisodeProcess


def build_model(seed: int = 7, **kwargs) -> DemandModel:
    return DemandModel.build({"london": 10, "tokyo": 4}, seed=seed, **kwargs)


class TestCityDemand:
    def test_rate_swings_with_diurnal_curve(self):
        city = CityDemand(
            city="x",
            base_qps=100.0,
            diurnal=DiurnalCurve(amplitude=0.5, peak_hour=20.0),
            flash=EpisodeProcess(rate_per_day=0.0, mean_severity=1.0, seed=1),
        )
        assert city.rate_qps(20.0 * 3600.0) == pytest.approx(150.0)
        assert city.rate_qps(8.0 * 3600.0) == pytest.approx(50.0)

    def test_littles_law_concurrency(self):
        city = CityDemand(
            city="x",
            base_qps=100.0,
            diurnal=DiurnalCurve(amplitude=0.0),
            flash=EpisodeProcess(rate_per_day=0.0, mean_severity=1.0, seed=1),
        )
        assert city.expected_concurrent(0.0, 120.0) == pytest.approx(12_000.0)

    def test_flash_crowd_multiplies_rate(self):
        flash = EpisodeProcess(rate_per_day=0.0, mean_severity=1.0, seed=1)
        from repro.net.diurnal import Episode

        flash._cache[0] = (Episode(start_s=0.0, duration_s=3_600.0, extra_util=2.0),)
        city = CityDemand(
            city="x", base_qps=100.0, diurnal=DiurnalCurve(amplitude=0.0), flash=flash
        )
        assert city.rate_qps(1_800.0) == pytest.approx(300.0)
        assert city.rate_qps(7_200.0) == pytest.approx(100.0)

    def test_negative_base_rejected(self):
        with pytest.raises(ConfigError):
            CityDemand(
                city="x",
                base_qps=-1.0,
                diurnal=DiurnalCurve(amplitude=0.0),
                flash=EpisodeProcess(rate_per_day=0.0, mean_severity=1.0, seed=1),
            )


class TestDemandModelBuild:
    def test_base_qps_scales_with_clients(self):
        model = build_model(qps_per_client=10.0)
        by_city = {c.city: c for c in model.cities}
        assert by_city["london"].base_qps == pytest.approx(100.0)
        assert by_city["tokyo"].base_qps == pytest.approx(40.0)

    def test_cities_sorted_and_zero_client_cities_dropped(self):
        model = DemandModel.build({"tokyo": 2, "london": 3, "paris": 0}, seed=1)
        assert model.city_names == ("london", "tokyo")

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigError):
            DemandModel.build({}, seed=1)
        with pytest.raises(ConfigError):
            DemandModel.build({"london": 0}, seed=1)

    def test_flash_seeds_differ_per_city(self):
        model = build_model(flash_rate_per_day=5.0)
        seeds = {c.flash.seed for c in model.cities}
        assert len(seeds) == len(model.cities)


class TestSampling:
    def test_same_seed_same_samples(self):
        a = build_model().sample_concurrent(3, 12_600.0, 120.0)
        b = build_model().sample_concurrent(3, 12_600.0, 120.0)
        assert a == b

    def test_samples_independent_of_query_order(self):
        model = build_model()
        forward = [model.sample_concurrent(e, e * 3_600.0, 120.0) for e in range(5)]
        fresh = build_model()
        backward = [
            fresh.sample_concurrent(e, e * 3_600.0, 120.0) for e in reversed(range(5))
        ]
        assert forward == list(reversed(backward))

    def test_different_epochs_differ(self):
        model = build_model()
        draws = {tuple(model.sample_concurrent(e, 3_600.0, 120.0).items()) for e in range(8)}
        assert len(draws) > 1

    def test_scale_zero_yields_no_flows(self):
        model = build_model()
        assert all(
            v == 0 for v in model.sample_concurrent(0, 0.0, 120.0, scale=0.0).values()
        )

    def test_poisson_mean_tracks_expectation(self):
        model = build_model(qps_per_client=100.0)
        t = 6.5 * 3_600.0
        expected = model.expected_concurrent(t, 120.0)
        sampled = model.sample_concurrent(5, t, 120.0)
        for city, mean in expected.items():
            # Poisson sd is sqrt(mean); 5 sigma keeps this deterministic
            # test far from flaky while still pinning the scale.
            assert abs(sampled[city] - mean) < 5.0 * max(mean, 1.0) ** 0.5

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            build_model().sample_concurrent(0, 0.0, 120.0, scale=-1.0)

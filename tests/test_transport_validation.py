"""Cross-engine agreement (model vs fluid vs packet)."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.transport.validation import (
    CANONICAL_SCENARIOS,
    EngineComparison,
    Scenario,
    compare_engines,
    fluid_throughput,
    model_throughput,
    packet_throughput,
    render_comparison,
)


@pytest.fixture(scope="module")
def comparisons():
    return compare_engines(seeds=(1, 2))


class TestScenarios:
    def test_canonical_matrix_covers_regimes(self):
        names = {s.name for s in CANONICAL_SCENARIOS}
        assert {"clean-bottleneck", "window-limited", "lossy-short", "lossy-long"} == names

    def test_scenario_validation(self):
        with pytest.raises(TransportError):
            Scenario("bad", 0.0, 10.0, 0.0)
        with pytest.raises(TransportError):
            Scenario("bad", 10.0, 10.0, 1.0)


class TestEngines:
    def test_engines_agree_within_small_factor(self, comparisons):
        """The repository's core credibility claim."""
        for comparison in comparisons:
            assert comparison.max_disagreement() <= 3.0, (
                comparison.scenario.name,
                comparison.model_mbps,
                comparison.fluid_mbps,
                comparison.packet_mbps,
            )

    def test_window_limited_agreement_is_tight(self, comparisons):
        """Window limits involve no stochastics: all engines nail it."""
        window = next(c for c in comparisons if c.scenario.name == "window-limited")
        assert window.max_disagreement() <= 1.1

    def test_loss_ordering_consistent(self, comparisons):
        """Every engine ranks the scenarios the same way."""
        clean = next(c for c in comparisons if c.scenario.name == "clean-bottleneck")
        lossy = next(c for c in comparisons if c.scenario.name == "lossy-long")
        assert clean.model_mbps > lossy.model_mbps
        assert clean.fluid_mbps > lossy.fluid_mbps
        assert clean.packet_mbps > lossy.packet_mbps

    def test_single_engine_helpers(self):
        scenario = Scenario("probe", 50.0, 10.0, 0.0, rwnd_bytes=262_144)
        model = model_throughput(scenario)
        fluid = fluid_throughput(scenario, seed=1, duration_s=20.0)
        packet = packet_throughput(scenario, seed=1, duration_s=10.0)
        for value in (model, fluid, packet):
            assert value > 0

    def test_render(self, comparisons):
        text = render_comparison(comparisons)
        assert "max disagreement" in text
        for scenario in CANONICAL_SCENARIOS:
            assert scenario.name in text

    def test_zero_throughput_rejected(self):
        comparison = EngineComparison(
            scenario=CANONICAL_SCENARIOS[0],
            model_mbps=0.0,
            fluid_mbps=1.0,
            packet_mbps=1.0,
        )
        with pytest.raises(TransportError):
            comparison.max_disagreement()

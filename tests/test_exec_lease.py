"""Unit tests for the lease-table state machine (fake clock, no processes)."""

from __future__ import annotations

import pytest

from repro.errors import ExecError
from repro.exec.lease import Lease, LeaseConfig, LeaseTable


def table(n=3, **kwargs) -> LeaseTable:
    defaults = dict(lease_timeout_s=10.0, max_attempts=3, backoff_s=1.0,
                    backoff_factor=2.0, backoff_cap_s=4.0)
    defaults.update(kwargs)
    return LeaseTable(n, LeaseConfig(**defaults))


class TestLeaseConfig:
    def test_backoff_is_bounded_exponential(self):
        config = LeaseConfig(backoff_s=1.0, backoff_factor=2.0, backoff_cap_s=5.0)
        assert config.backoff_for(1) == 1.0
        assert config.backoff_for(2) == 2.0
        assert config.backoff_for(3) == 4.0
        assert config.backoff_for(4) == 5.0  # capped
        assert config.backoff_for(10) == 5.0

    def test_invalid_knobs_raise(self):
        with pytest.raises(ExecError):
            LeaseConfig(lease_timeout_s=0)
        with pytest.raises(ExecError):
            LeaseConfig(max_attempts=0)
        with pytest.raises(ExecError):
            LeaseConfig(backoff_s=-1)
        with pytest.raises(ExecError):
            LeaseConfig(backoff_factor=0.5)


class TestGranting:
    def test_grants_in_shard_order_with_fresh_lease_ids(self):
        t = table(3)
        leases = [t.grant(f"w{i}", now=0.0) for i in range(3)]
        assert [lease.shard for lease in leases] == [0, 1, 2]
        assert [lease.lease_id for lease in leases] == [1, 2, 3]
        assert all(lease.attempt == 1 for lease in leases)
        assert t.grant("w9", now=0.0) is None  # nothing left

    def test_deadline_is_grant_time_plus_timeout(self):
        lease = table(1).grant("w0", now=100.0)
        assert lease.granted_at == 100.0
        assert lease.deadline == 110.0

    def test_negative_shard_count_rejected(self):
        with pytest.raises(ExecError):
            LeaseTable(-1)


class TestRenewal:
    def test_heartbeat_extends_deadline(self):
        t = table(1)
        lease = t.grant("w0", now=0.0)
        assert t.renew(lease.lease_id, now=8.0)
        assert t.expire(now=10.0) == []  # would have lapsed without the beat
        lapsed = t.expire(now=18.0)
        assert [lapse.shard for lapse in lapsed] == [0]

    def test_renewing_revoked_lease_is_a_noop(self):
        t = table(1)
        lease = t.grant("w0", now=0.0)
        t.expire(now=10.0)
        assert not t.renew(lease.lease_id, now=11.0)


class TestExpiryAndRevocation:
    def test_expired_shard_requeues_with_backoff(self):
        t = table(1)
        t.grant("w0", now=0.0)
        assert len(t.expire(now=10.0)) == 1
        assert t.expired == 1
        # Attempt 1 burned -> backoff_for(1) = 1s before re-grant.
        assert not t.has_grantable(now=10.5)
        assert t.has_grantable(now=11.0)
        regrant = t.grant("w1", now=11.0)
        assert regrant.shard == 0
        assert regrant.attempt == 2

    def test_revoke_worker_requeues_everything_it_held(self):
        t = table(3)
        t.grant("w0", now=0.0)
        t.grant("w1", now=0.0)
        revoked = t.revoke_worker("w0", now=1.0, reason="worker died")
        assert [lease.shard for lease in revoked] == [0]
        assert t.last_error(0) == "worker died"
        # w1's lease is untouched; shard 2 was never leased.
        assert t.outstanding == 3

    def test_attempt_budget_exhaustion_quarantines(self):
        t = table(1, max_attempts=2, backoff_s=0.0)
        t.grant("w0", now=0.0)
        t.expire(now=10.0)
        t.grant("w1", now=10.0)
        t.expire(now=20.0)
        assert t.quarantined == [0]
        assert t.all_settled  # quarantine settles the shard (as poison)
        assert t.grant("w2", now=30.0) is None

    def test_clean_error_ack_requeues_like_expiry(self):
        t = table(1, backoff_s=0.0)
        lease = t.grant("w0", now=0.0)
        settled = t.complete(lease.lease_id, now=1.0, error="ValueError: boom")
        assert settled is not None
        assert t.last_error(0) == "ValueError: boom"
        assert t.grant("w1", now=1.0).attempt == 2


class TestCompletion:
    def test_complete_marks_done(self):
        t = table(2)
        lease = t.grant("w0", now=0.0)
        assert isinstance(t.complete(lease.lease_id, now=1.0), Lease)
        assert t.done == [0]
        assert t.outstanding == 1
        assert not t.all_settled

    def test_stale_ack_is_counted_and_ignored(self):
        t = table(1)
        lease = t.grant("w0", now=0.0)
        t.expire(now=10.0)  # revoked: the ack below is stale
        assert t.complete(lease.lease_id, now=12.0) is None
        assert t.stale_acks == 1
        # The shard still belongs to the replacement lease's flow.
        replacement = t.grant("w1", now=12.0)
        assert t.complete(replacement.lease_id, now=13.0) is not None
        assert t.done == [0]

    def test_complete_shard_outside_lease_flow(self):
        t = table(1)
        t.grant("w0", now=0.0)
        t.complete_shard(0)  # cache recovery path
        assert t.done == [0]
        assert t.expire(now=100.0) == []  # its lease went with it


class TestQueries:
    def test_next_wakeup_tracks_deadlines_and_backoffs(self):
        t = table(2)
        t.grant("w0", now=0.0)
        assert t.next_wakeup(now=0.0) == 10.0  # the live lease's deadline
        t.expire(now=10.0)
        # Shard 0 backs off 1s; shard 1 is grantable now, so only the
        # backoff expiry is a future instant.
        assert t.next_wakeup(now=10.0) == 11.0
        t.grant("w1", now=10.0)  # shard 1
        assert t.next_wakeup(now=10.0) == 11.0  # backoff before deadline (20)

    def test_next_wakeup_none_when_all_settled(self):
        t = table(1)
        lease = t.grant("w0", now=0.0)
        t.complete(lease.lease_id, now=1.0)
        assert t.next_wakeup(now=1.0) is None
        assert t.all_settled

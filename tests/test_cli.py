"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_world_summary(self, capsys):
        assert main(["world", "--seed", "3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "ASes:" in out
        assert "clients: 12" in out

    def test_run_fig2_small(self, capsys):
        assert main(["run", "fig2", "--seed", "3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_run_cost_small(self, capsys):
        assert main(["run", "cost", "--seed", "3", "--scale", "small"]) == 0
        assert "cost ratio" in capsys.readouterr().out

    def test_run_with_json_dump(self, capsys, tmp_path):
        target = tmp_path / "fig2.json"
        assert main(
            ["run", "fig2", "--seed", "3", "--scale", "small", "--out", str(target)]
        ) == 0
        data = json.loads(target.read_text())
        assert "pairs" in data

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_multihop(self, capsys):
        assert main(["run", "multihop", "--seed", "3", "--scale", "small"]) == 0
        assert "two-hop" in capsys.readouterr().out

    def test_control_subcommand(self, capsys):
        assert main(
            [
                "control",
                "--seed", "3",
                "--scale", "small",
                "--duration", "1200",
                "--probe-interval", "30",
                "--tick", "15",
                "--outage-start", "300",
                "--outage-duration", "450",
                "--metrics",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "failover study" in out
        assert "static-direct" in out
        assert "metrics snapshot" in out

    def test_chaos_subcommand_fast(self, capsys):
        assert main(
            ["chaos", "--seed", "3", "--scenario", "probe-loss", "--fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos study" in out
        assert "probe-loss" in out
        assert "hardened" in out

    def test_chaos_list_scenarios(self, capsys):
        assert main(["chaos", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "probe-blackout" in out
        assert "as-outage" in out

    def test_chaos_json_dump(self, capsys, tmp_path):
        target = tmp_path / "chaos.json"
        assert main(
            [
                "chaos",
                "--seed", "3",
                "--scenario", "gray-direct",
                "--fast",
                "--out", str(target),
            ]
        ) == 0
        data = json.loads(target.read_text())
        assert "outcomes" in data

    def test_control_json_dump(self, capsys, tmp_path):
        target = tmp_path / "control.json"
        assert main(
            [
                "control",
                "--seed", "3",
                "--scale", "small",
                "--duration", "1200",
                "--outage-start", "300",
                "--outage-duration", "450",
                "--out", str(target),
            ]
        ) == 0
        data = json.loads(target.read_text())
        assert "outcomes" in data
        assert "failed_links" in data


class TestChaosAdaptiveCli:
    def test_adaptive_flag(self, capsys):
        assert main(
            [
                "chaos",
                "--seed", "3",
                "--scenario", "gray-detect",
                "--fast",
                "--adaptive",
                "--probe-floor", "5",
                "--probe-ceiling", "60",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "detect" in out

    def test_list_scenarios_includes_gray_detect(self, capsys):
        assert main(["chaos", "--list-scenarios"]) == 0
        assert "gray-detect" in capsys.readouterr().out

    def test_default_suite_excludes_gray_detect(self, capsys):
        # Knobs off, the classic eight run — gray-detect only joins via
        # --scenario gray-detect or --scenario all.
        assert main(["chaos", "--seed", "3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "gray-detect" not in out
        assert "as-outage" in out

    def test_scenario_all_includes_gray_detect(self, capsys):
        assert main(
            ["chaos", "--seed", "3", "--scenario", "all", "--fast"]
        ) == 0
        assert "gray-detect" in capsys.readouterr().out


class TestExecCli:
    def test_run_with_workers_writes_manifest(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = tmp_path / "cache"
        assert main(
            [
                "run", "fig6-7", "--seed", "3", "--scale", "small",
                "--workers", "2", "--cache-dir", str(cache),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "exec run" in out
        assert "controlled.pairs" in out
        manifests = list((cache / "runs").glob("*.json"))
        assert len(manifests) == 1

    def test_exec_manifest_and_cache_verbs(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            [
                "run", "chaos", "--seed", "3", "--scale", "small",
                "--workers", "2", "--cache-dir", str(cache),
            ]
        ) == 0
        capsys.readouterr()
        manifest = next((cache / "runs").glob("*.json"))
        assert main(["exec", "manifest", str(manifest)]) == 0
        assert "chaos.runs" in capsys.readouterr().out
        assert main(["exec", "cache", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_resume_serves_cached_shards(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        args = [
            "run", "fig3-5", "--seed", "3", "--scale", "small",
            "--workers", "2", "--cache-dir", str(cache),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out or "0 execu" in out

    def test_serial_path_untouched_without_exec_flags(self, capsys):
        assert main(["run", "fig3-5", "--seed", "3", "--scale", "small"]) == 0
        assert "exec run" not in capsys.readouterr().out

    def test_coordinator_backend_flag(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            [
                "run", "fig3-5", "--seed", "3", "--scale", "small",
                "--workers", "2", "--cache-dir", str(cache),
                "--backend", "coordinator",
                "--lease-timeout", "10", "--max-attempts", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "exec run" in out
        assert "(coordinator)" in out

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "fig3-5", "--backend", "carrier-pigeon"])


class TestChaosAblationCli:
    def test_single_knob_adds_adaptive_arm(self, capsys):
        assert main(
            [
                "chaos", "--seed", "3", "--scenario", "gray-detect",
                "--fast", "--gray-detect",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "detect" in out

"""Diversity scores and segment-location analysis."""

from __future__ import annotations

import pytest

from repro.analysis.diversity import (
    diversity_score,
    end_segment_share,
    segment_location_shares,
)
from repro.errors import AnalysisError
from repro.net.congestion import BackgroundLoad
from repro.net.links import Link, LinkClass
from repro.net.path import RouterPath
from repro.net.world import HOST_ID_BASE


def make_path(router_ids):
    """A path through the given ids, with hosts at both ends."""
    ids = [HOST_ID_BASE + 1, *router_ids, HOST_ID_BASE + 2]
    links = tuple(
        Link(
            link_id=i + 1,
            router_a=a,
            router_b=b,
            capacity_mbps=100.0,
            prop_delay_ms=1.0,
            base_loss=0.0,
            link_class=LinkClass.INTERNAL,
            load=BackgroundLoad(base_util=0.1),
        )
        for i, (a, b) in enumerate(zip(ids, ids[1:]))
    )
    return RouterPath(src_name="a", dst_name="b", router_ids=tuple(ids), links=links)


class TestDiversityScore:
    def test_identical_paths_score_zero(self):
        path = make_path([1, 2, 3, 4])
        assert diversity_score(path, path) == 0.0

    def test_fully_disjoint_scores_one(self):
        direct = make_path([1, 2, 3, 4])
        overlay = make_path([5, 6, 7])
        assert diversity_score(direct, overlay) == 1.0

    def test_partial_overlap(self):
        direct = make_path([1, 2, 3, 4])
        overlay = make_path([1, 9, 8, 4])
        assert diversity_score(direct, overlay) == pytest.approx(0.5)

    def test_hosts_do_not_count(self):
        """The shared endpoints must not depress the score."""
        direct = make_path([1, 2])
        overlay = make_path([3, 4])
        assert diversity_score(direct, overlay) == 1.0

    def test_zero_router_direct_path_scores_one(self):
        """Regression: a routerless direct path (hosts behind one
        attachment) is defined as fully diverse, not a raise."""
        direct = make_path([])
        overlay = make_path([1, 2])
        assert diversity_score(direct, overlay) == 1.0

    def test_zero_router_both_paths(self):
        assert diversity_score(make_path([]), make_path([])) == 1.0

    def test_zero_router_segment_shares_unaffected(self):
        """The companion statistic still reports (0, 0, 0): no routers
        means no common routers to locate."""
        assert segment_location_shares(make_path([]), make_path([1])) == (
            0.0,
            0.0,
            0.0,
        )


class TestSegmentShares:
    def test_end_heavy_overlap(self):
        # Common routers at positions 0 and 8 of 9 -> first and last thirds.
        direct = make_path([1, 2, 3, 4, 5, 6, 7, 8, 9])
        overlay = make_path([1, 20, 21, 9])
        shares = segment_location_shares(direct, overlay)
        assert shares == (0.5, 0.0, 0.5)

    def test_middle_overlap(self):
        direct = make_path([1, 2, 3, 4, 5, 6])
        overlay = make_path([10, 3, 4, 11])
        shares = segment_location_shares(direct, overlay)
        assert shares[1] == 1.0

    def test_no_overlap(self):
        direct = make_path([1, 2, 3])
        overlay = make_path([4, 5, 6])
        assert segment_location_shares(direct, overlay) == (0.0, 0.0, 0.0)

    def test_end_segment_share_aggregation(self):
        shares = [(0.5, 0.0, 0.5), (0.25, 0.5, 0.25), (0.0, 0.0, 0.0)]
        # The no-overlap path contributes nothing.
        assert end_segment_share(shares) == pytest.approx((1.0 + 0.5) / 2)
        with pytest.raises(AnalysisError):
            end_segment_share([(0.0, 0.0, 0.0)])


class TestOnRealWorld:
    def test_overlay_diversity_in_range(self, small_internet):
        direct = small_internet.resolve_path("client", "server")
        leg1 = small_internet.resolve_path("client", "vm")
        leg2 = small_internet.resolve_path("vm", "server")
        overlay = leg1.concatenate(leg2)
        score = diversity_score(direct, overlay)
        assert 0.0 <= score <= 1.0
        shares = segment_location_shares(direct, overlay)
        assert sum(shares) == pytest.approx(1.0) or sum(shares) == 0.0

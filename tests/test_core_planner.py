"""Greedy placement planning (Sec. VII-A extension)."""

from __future__ import annotations

import pytest

from repro.core.planner import PlacementPlanner
from repro.errors import ConfigError
from repro.experiments.placement_exp import run_placement


@pytest.fixture(scope="module")
def planned():
    return run_placement(seed=19, scale="small", budget=4, n_pairs=6)


class TestPlanner:
    def test_plan_shape(self, planned):
        plan = planned.plan
        assert len(plan.chosen) == 4
        assert len(set(plan.chosen)) == 4
        assert len(plan.steps) == 4

    def test_objective_monotone(self, planned):
        objectives = [step.objective_mbps for step in planned.plan.steps]
        assert all(b >= a - 1e-9 for a, b in zip(objectives, objectives[1:]))

    def test_diminishing_returns(self, planned):
        """Greedy on a submodular objective: marginal gains decrease."""
        gains = planned.marginal_gains()
        assert gains[0] >= gains[-1] - 1e-9

    def test_first_two_capture_most(self, planned):
        """The planning-side confirmation of Table I."""
        assert planned.first_two_capture() >= 0.8

    def test_render(self, planned):
        text = planned.render()
        assert "placement plan" in text
        assert "improvement factor" in text

    def test_first_pick_is_single_best(self, planned):
        """Greedy's first step is the exactly-best single DC."""
        plan = planned.plan
        assert plan.steps[0].marginal_gain_mbps == pytest.approx(
            plan.steps[0].objective_mbps
        )


class TestPlannerValidation:
    def test_bad_inputs(self, small_internet):
        from repro.cloud.provider import CloudProvider

        # A provider facade is needed only for construction checks.
        provider = object.__new__(CloudProvider)
        with pytest.raises(ConfigError):
            PlacementPlanner(small_internet, provider, [], [("a", "b")], [0.0])
        with pytest.raises(ConfigError):
            PlacementPlanner(small_internet, provider, ["dallas", "dallas"], [("a", "b")], [0.0])
        with pytest.raises(ConfigError):
            PlacementPlanner(small_internet, provider, ["dallas"], [], [0.0])
        with pytest.raises(ConfigError):
            PlacementPlanner(small_internet, provider, ["dallas"], [("a", "b")], [])
        planner = PlacementPlanner(
            small_internet, provider, ["dallas"], [("a", "b")], [0.0]
        )
        with pytest.raises(ConfigError):
            planner.plan(0)
        with pytest.raises(ConfigError):
            planner.plan(2)

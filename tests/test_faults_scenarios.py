"""Named chaos scenarios: construction, targeting, determinism."""

from __future__ import annotations

import pytest

from repro.core.pathset import PathSet
from repro.errors import ExperimentError
from repro.faults.scenarios import (
    SCENARIOS,
    build_scenario,
    direct_only_link,
    unique_middle_link,
)
from repro.tunnel.node import OverlayNode


@pytest.fixture()
def pathset(small_internet) -> PathSet:
    node = OverlayNode(host=small_internet.host("vm"))
    return PathSet.build(small_internet, "server", "client", [node])


class TestTargetHelpers:
    def test_direct_only_link_not_on_overlays(self, pathset):
        link_id = direct_only_link(pathset)
        for option in pathset.options:
            assert link_id not in {
                link.link_id for link in option.concatenated.links
            }

    def test_unique_middle_link_fails_when_fully_shared(self, pathset):
        with pytest.raises(ExperimentError):
            unique_middle_link(pathset.direct, [pathset.direct])


class TestBuilders:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_builds(self, name, small_internet, pathset):
        scenario = build_scenario(name, small_internet, pathset, horizon_s=3_600.0)
        assert scenario.name == name
        assert scenario.events or scenario.probe_events
        for event in scenario.events:
            assert event.window.end_s <= 3_600.0
            for link_id in event.link_ids:
                assert link_id in small_internet.links_by_id
        assert scenario.describe().startswith(name)

    def test_windows_scale_with_horizon(self, small_internet, pathset):
        short = build_scenario("as-outage", small_internet, pathset, horizon_s=900.0)
        long = build_scenario("as-outage", small_internet, pathset, horizon_s=3_600.0)
        assert short.events[0].window.start_s * 4 == pytest.approx(
            long.events[0].window.start_s
        )

    def test_same_inputs_same_targets(self, small_internet, pathset):
        first = build_scenario("probe-blackout", small_internet, pathset, 3_600.0)
        second = build_scenario("probe-blackout", small_internet, pathset, 3_600.0)
        assert [e.link_ids for e in first.events] == [e.link_ids for e in second.events]
        assert first.description == second.description

    def test_unknown_scenario_rejected(self, small_internet, pathset):
        with pytest.raises(ExperimentError, match="unknown chaos scenario"):
            build_scenario("nope", small_internet, pathset, 3_600.0)

    def test_degradation_showcase_shape(self, small_internet, pathset):
        scenario = build_scenario("probe-blackout", small_internet, pathset, 3_600.0)
        kinds = [event.kind for event in scenario.events]
        assert "gray-failure" in kinds
        assert "link-outage" in kinds
        assert len(scenario.probe_events) == 1

    def test_pop_outage_shape(self, small_internet, pathset):
        from repro.faults.events import ProbeFaultKind
        from repro.faults.scenarios import best_overlay_name

        scenario = build_scenario("pop-outage", small_internet, pathset, 3_600.0)
        kinds = [event.kind for event in scenario.events]
        assert kinds.count("gray-failure") == 1
        assert kinds.count("pop-outage") == 4
        # Probe shadows: one LOST event per episode, scoped to the best
        # overlay whose transit PoP dies — its probes ride the dead PoP.
        best = best_overlay_name(pathset)
        assert len(scenario.probe_events) == 4
        for shadow, episode in zip(
            scenario.probe_events,
            [e for e in scenario.events if e.kind == "pop-outage"],
        ):
            assert shadow.fault is ProbeFaultKind.LOST
            assert shadow.labels == (best,)
            assert shadow.window == episode.window
        # Partial degradation: the dead PoP never touches the direct path,
        # so the controller keeps a live fallback throughout.
        direct_links = {link.link_id for link in pathset.direct.links}
        for event in scenario.events:
            if event.kind == "pop-outage":
                assert not direct_links & set(event.link_ids)

"""Unit tests for repro.exec's identity, partitioning, cache and manifest."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExecError
from repro.exec.cache import MISS, ResultCache
from repro.exec.manifest import RunManifest, ShardRecord
from repro.exec.pool import ShardOutcome
from repro.exec.shard import default_shard_count, partition_indices
from repro.exec.spec import TaskSpec, canonical_json


class TestTaskSpec:
    def test_key_is_stable_across_param_insertion_order(self):
        a = TaskSpec("k", 7, 0, 2, params={"x": 1, "y": 2})
        b = TaskSpec("k", 7, 0, 2, params={"y": 2, "x": 1})
        assert a.key() == b.key()

    def test_key_changes_with_every_identity_component(self):
        base = TaskSpec("k", 7, 0, 2, params={"x": 1})
        variants = [
            TaskSpec("other", 7, 0, 2, params={"x": 1}),
            TaskSpec("k", 8, 0, 2, params={"x": 1}),
            TaskSpec("k", 7, 1, 2, params={"x": 1}),
            TaskSpec("k", 7, 0, 3, params={"x": 1}),
            TaskSpec("k", 7, 0, 2, params={"x": 2}),
        ]
        keys = {spec.key() for spec in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_salt_changes_key(self):
        spec = TaskSpec("k", 7, 0, 1)
        assert spec.key("epoch=1") != spec.key("epoch=2")

    def test_label(self):
        assert TaskSpec("longitudinal.samples", 7, 2, 8).label == (
            "longitudinal.samples[2/8]"
        )

    def test_invalid_specs_raise(self):
        with pytest.raises(ExecError):
            TaskSpec("", 7, 0, 1)
        with pytest.raises(ExecError):
            TaskSpec("k", 7, 2, 2)
        with pytest.raises(ExecError):
            TaskSpec("k", 7, 0, 0)
        with pytest.raises(ExecError):
            TaskSpec("k", 7, 0, 1, params={"bad": object()})

    def test_canonical_json_rejects_non_serializable(self):
        with pytest.raises(ExecError):
            canonical_json({"fn": lambda: None})


class TestPartitioning:
    def test_shard_count_is_pure_function_of_work_size(self):
        assert default_shard_count(3) == 3
        assert default_shard_count(16) == 16
        assert default_shard_count(100) == 16
        assert default_shard_count(100, max_shards=4) == 4

    def test_partition_concatenates_to_full_range(self):
        for n_items in (1, 5, 16, 33, 100):
            for n_shards in (1, 2, 7, min(n_items, 16)):
                if n_shards > n_items:
                    continue
                spans = partition_indices(n_items, n_shards)
                flat = [i for span in spans for i in span]
                assert flat == list(range(n_items))
                sizes = [len(span) for span in spans]
                assert max(sizes) - min(sizes) <= 1

    def test_partition_rejects_more_shards_than_items(self):
        with pytest.raises(ExecError):
            partition_indices(3, 4)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = TaskSpec("k", 7, 0, 1).key()
        cache.put(key, {"rows": [1, 2, 3]})
        assert cache.has(key)
        assert cache.get(key) == {"rows": [1, 2, 3]}

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ab" + "0" * 62) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = TaskSpec("k", 7, 0, 1).key()
        path = cache.put(key, [1])
        path.write_text("{torn")
        assert cache.get(key) is None
        path.write_text(json.dumps({"key": "someone-else", "payload": [9]}))
        assert cache.get(key) is None

    def test_truncated_payload_mid_file_is_a_miss_and_quarantined(self, tmp_path):
        # The regression: a payload truncated mid-file — here mid
        # multi-byte character, the nastiest case (raises
        # UnicodeDecodeError, not JSONDecodeError) — must read as a
        # cache miss, never an error, and the bad file must be moved
        # aside so the recompute lands cleanly.
        cache = ResultCache(tmp_path)
        key = TaskSpec("k", 7, 0, 1).key()
        path = cache.put(key, {"note": "café" * 40})
        raw = json.dumps(
            {"key": key, "payload": {"note": "café" * 40}}, ensure_ascii=False
        ).encode("utf-8")
        cut = raw.index("é".encode("utf-8")) + 1  # inside the 2-byte char
        path.write_bytes(raw[:cut])
        assert cache.lookup(key) is MISS
        assert not path.exists()  # quarantined, not left to re-trip
        assert path.with_suffix(".corrupt").exists()  # evidence kept
        cache.put(key, {"note": "café" * 40})  # recompute lands cleanly
        assert cache.get(key) == {"note": "café" * 40}

    def test_has_is_existence_only_but_lookup_validates(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = TaskSpec("k", 7, 0, 1).key()
        path = cache.put(key, [1, 2])
        path.write_bytes(path.read_bytes()[:5])  # torn entry
        assert cache.has(key)  # has() is a cheap existence check...
        assert cache.lookup(key) is MISS  # ...lookup() is the truth
        assert not cache.has(key)  # and it quarantined the bad file

    def test_lookup_distinguishes_none_payload_from_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = TaskSpec("k", 7, 0, 1).key()
        cache.put(key, None)
        assert cache.lookup(key) is None
        assert cache.lookup("ab" + "0" * 62) is MISS

    def test_stats_exclude_run_manifests(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(TaskSpec("k", 7, 0, 1).key(), [1])
        runs = tmp_path / "runs"
        runs.mkdir()
        (runs / "deadbeef.json").write_text("{}")
        count, size = cache.stats()
        assert count == 1
        assert size > 0


class TestManifest:
    def _manifest(self) -> RunManifest:
        outcome = ShardOutcome(
            index=0, key="a" * 64, label="k[0/2]", status="ok",
            attempts=1, duration_s=0.5,
        )
        failed = ShardOutcome(
            index=1, key="b" * 64, label="k[1/2]", status="error",
            attempts=2, duration_s=0.1, error="boom",
        )
        return RunManifest(
            workers=4,
            records=[
                ShardRecord.from_outcome("main", outcome),
                ShardRecord.from_outcome("main", failed),
            ],
            wall_s=1.25,
        )

    def test_counts_and_render(self):
        manifest = self._manifest()
        assert manifest.executed == 1
        assert manifest.errors == 1
        assert manifest.cache_hits == 0
        assert manifest.stage_counts() == {"main": (1, 0, 1)}
        text = manifest.render()
        assert "FAILED main/k[1/2]" in text
        assert "boom" in text

    def test_run_id_ignores_timing(self):
        a = self._manifest()
        b = self._manifest()
        object.__setattr__(b, "wall_s", 99.0)
        assert a.run_id == b.run_id

    def test_write_load_round_trip(self, tmp_path):
        manifest = self._manifest()
        path = manifest.write(tmp_path / "runs" / "m.json")
        loaded = RunManifest.load(path)
        assert loaded.run_id == manifest.run_id
        assert loaded.records == manifest.records
        assert loaded.workers == 4

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ExecError):
            RunManifest.load(bad)
        with pytest.raises(ExecError):
            RunManifest.load(tmp_path / "missing.json")

"""The demand engine: epoch metrics, determinism, load feedback."""

from __future__ import annotations

import json

import pytest

from repro.control.policy import BestPathPolicy, QpsWeightedPolicy
from repro.demand.engine import DemandEngine, PairRoutes, RelayLoadTracker
from repro.demand.model import DemandModel
from repro.demand.relay import RelayCapacity
from repro.errors import ConfigError

CITY = "london"


def pair(pair_id: int, direct: float, ams: float, dc: float) -> PairRoutes:
    return PairRoutes(
        pair_id=pair_id,
        client=f"c{pair_id}",
        server=f"s{pair_id}",
        city=CITY,
        direct_mbps=direct,
        overlay_mbps=(("ams", ams), ("dc", dc)),
        overlay_rtt_ms=(("ams", 80.0), ("dc", 120.0)),
        ingress_rtt_ms=(("ams", 10.0), ("dc", 70.0)),
    )


def make_engine(policy=None, load_scale: float = 1.0, **kwargs) -> DemandEngine:
    tracker = RelayLoadTracker()
    return DemandEngine(
        pairs=[pair(0, 5.0, 12.0, 9.0), pair(1, 20.0, 15.0, 14.0)],
        relays=[
            RelayCapacity(label="ams", nic_mbps=10_000.0),
            RelayCapacity(label="dc", nic_mbps=10_000.0),
        ],
        model=DemandModel.build({CITY: 12}, seed=7),
        policy=policy if policy is not None else QpsWeightedPolicy(load=tracker),
        tracker=tracker,
        load_scale=load_scale,
        **kwargs,
    )


class TestPairRoutes:
    def test_rejects_pair_without_overlays(self):
        with pytest.raises(ConfigError):
            PairRoutes(
                pair_id=0, client="c", server="s", city=CITY, direct_mbps=1.0,
                overlay_mbps=(), overlay_rtt_ms=(), ingress_rtt_ms=(),
            )

    def test_rejects_duplicate_relays(self):
        with pytest.raises(ConfigError):
            PairRoutes(
                pair_id=0, client="c", server="s", city=CITY, direct_mbps=1.0,
                overlay_mbps=(("ams", 1.0), ("ams", 2.0)),
                overlay_rtt_ms=(), ingress_rtt_ms=(),
            )


class TestRelayLoadTracker:
    def test_set_reset_read(self):
        tracker = RelayLoadTracker()
        assert tracker.relay_load("ams", 0.0) == 0.0
        tracker.set_loads({"ams": 0.7})
        assert tracker.relay_load("ams", 10.0) == 0.7
        tracker.reset()
        assert tracker.relay_load("ams", 20.0) == 0.0


class TestEngineValidation:
    def test_rejects_empty_pairs_and_relays(self):
        model = DemandModel.build({CITY: 1}, seed=1)
        with pytest.raises(ConfigError):
            DemandEngine([], [RelayCapacity(label="r", nic_mbps=1.0)], model, BestPathPolicy())
        with pytest.raises(ConfigError):
            DemandEngine([pair(0, 1.0, 2.0, 3.0)], [], model, BestPathPolicy())

    def test_rejects_duplicate_relay_labels(self):
        model = DemandModel.build({CITY: 1}, seed=1)
        with pytest.raises(ConfigError):
            DemandEngine(
                [pair(0, 1.0, 2.0, 3.0)],
                [RelayCapacity(label="r", nic_mbps=1.0)] * 2,
                model,
                BestPathPolicy(),
            )

    def test_rejects_bad_epoch_duration(self):
        with pytest.raises(ConfigError):
            make_engine().epoch_metrics(0, 0.0)


class TestEpochMetrics:
    def test_repeat_call_is_identical(self):
        engine = make_engine()
        assert engine.epoch_metrics(4, 3_600.0) == engine.epoch_metrics(4, 3_600.0)

    def test_epoch_order_is_irrelevant(self):
        forward = make_engine()
        a = [forward.epoch_metrics(e, 3_600.0) for e in range(4)]
        backward = make_engine()
        b = [backward.epoch_metrics(e, 3_600.0) for e in reversed(range(4))]
        assert a == list(reversed(b))

    def test_metrics_are_json_safe(self):
        metrics = make_engine().epoch_metrics(2, 3_600.0)
        assert json.loads(json.dumps(metrics)) == metrics

    def test_low_load_win_rate_matches_split_fraction(self):
        # Pair 0's best overlay (12) beats direct (5); pair 1's (15)
        # loses to direct (20) -> half the pairs win when relays idle.
        metrics = make_engine(load_scale=0.01).epoch_metrics(0, 3_600.0)
        assert metrics["win_rate"] == pytest.approx(0.5)
        assert metrics["satisfied"] == pytest.approx(1.0)

    def test_saturation_kills_the_win(self):
        light = make_engine(load_scale=0.01).epoch_metrics(0, 3_600.0)
        crushed = make_engine(load_scale=500.0).epoch_metrics(0, 3_600.0)
        assert crushed["flows"] > light["flows"]
        assert crushed["peak_utilization"] > 1.0
        assert crushed["win_rate"] < light["win_rate"]
        assert crushed["satisfied"] < 1.0

    def test_relay_stats_cover_all_relays(self):
        metrics = make_engine().epoch_metrics(0, 3_600.0)
        assert set(metrics["relays"]) == {"ams", "dc"}
        for stats in metrics["relays"].values():
            assert set(stats) == {
                "flows", "demand_mbps", "capacity_mbps", "utilization", "loss"
            }

    def test_best_path_herds_qps_weighted_spreads(self):
        herd = make_engine(policy=BestPathPolicy(), load_scale=1.0)
        herd_metrics = herd.epoch_metrics(0, 3_600.0)
        spread_metrics = make_engine(load_scale=1.0).epoch_metrics(0, 3_600.0)
        herd_flows = [s["flows"] for s in herd_metrics["relays"].values()]
        spread_flows = [s["flows"] for s in spread_metrics["relays"].values()]
        # Herding puts everything on each pair's best relay; weighting
        # leaves no relay empty.
        assert min(herd_flows) == 0.0
        assert min(spread_flows) > 0.0

"""Multi-cloud deployment comparison (extension experiment)."""

from __future__ import annotations

import pytest

from repro.experiments.multicloud import run_multicloud
from repro.experiments.scenario import build_world


@pytest.fixture(scope="module")
def multicloud():
    return run_multicloud(seed=13, scale="small", n_pairs=6)


class TestExtraProviders:
    def test_world_carries_extra_clouds(self):
        world = build_world(
            seed=13, scale="small", extra_providers={"other": ("london", "seattle")}
        )
        assert world.extra_clouds is not None
        other = world.extra_clouds["other"]
        assert other.asn != world.cloud.asn
        assert set(other.datacenters) == {"london", "seattle"}

    def test_providers_have_distinct_ases(self):
        world = build_world(
            seed=13, scale="small", extra_providers={"other": ("london",)}
        )
        from repro.net.asn import ASKind

        clouds = world.internet.topology.ases_of_kind(ASKind.CLOUD)
        assert len(clouds) == 2


class TestMultiCloud:
    def test_pairs_compared(self, multicloud):
        assert len(multicloud.pairs) >= 4
        for pair in multicloud.pairs:
            assert pair.direct_mbps > 0
            assert pair.single_best_mbps > 0
            assert pair.multi_best_mbps > 0

    def test_diversity_not_reduced(self, multicloud):
        """A second AS's paths can only widen the diversity envelope."""
        single_div, multi_div = multicloud.mean_diversity()
        assert multi_div >= single_div - 0.1

    def test_throughput_comparable(self, multicloud):
        """Same node budget: neither deployment collapses."""
        assert 0.5 <= multicloud.median_gain() <= 2.0

    def test_render(self, multicloud):
        text = multicloud.render()
        assert "multi-cloud" in text
        assert "diversity" in text

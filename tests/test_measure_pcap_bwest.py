"""Packet captures, trace-driven tstat, and bandwidth estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.bwest import (
    CapacityEstimate,
    estimate_is_reliable,
    packet_pair_estimate,
    true_available_capacity_mbps,
)
from repro.measure.pcap import PacketTrace, capture, tstat_from_trace
from repro.transport.packetsim import PacketLevelTcp, SimLink


class TestCapture:
    def test_capture_produces_ordered_records(self):
        tcp = PacketLevelTcp(
            [SimLink(50.0, 10.0)], np.random.default_rng(1), rwnd_bytes=262_144
        )
        trace = capture(tcp, 5.0)
        assert trace.count("data") > 0
        assert trace.count("deliver") > 0
        assert trace.count("ack") > 0
        times = [t for t, _e, _s in trace.records]
        assert times == sorted(times)

    def test_clean_path_has_no_retx_records(self):
        tcp = PacketLevelTcp(
            [SimLink(50.0, 10.0)], np.random.default_rng(1), rwnd_bytes=262_144
        )
        trace = capture(tcp, 5.0)
        assert trace.count("retx") == 0

    def test_lossy_path_has_retx_records(self):
        tcp = PacketLevelTcp(
            [SimLink(50.0, 10.0, loss_prob=5e-3)],
            np.random.default_rng(2),
            rwnd_bytes=1_048_576,
        )
        trace = capture(tcp, 10.0)
        assert trace.count("retx") > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(MeasurementError):
            PacketTrace(records=(), mss_bytes=1_460)

    def test_out_of_order_trace_rejected(self):
        with pytest.raises(MeasurementError):
            PacketTrace(
                records=((1.0, "data", 0), (0.5, "data", 1)), mss_bytes=1_460
            )


class TestTstatFromTrace:
    def test_rtt_close_to_propagation(self):
        tcp = PacketLevelTcp(
            [SimLink(1_000.0, 25.0)], np.random.default_rng(3), rwnd_bytes=262_144
        )
        report = tstat_from_trace(capture(tcp, 5.0))
        # 2 x 25 ms propagation, nearly no queuing at this window.
        assert report.avg_rtt_ms == pytest.approx(50.0, rel=0.2)

    def test_retransmission_rate_from_trace_tracks_loss(self):
        # BDP-sized buffer so losses are (mostly) the injected random
        # ones, not sawtooth burst drops at a shallow queue.
        tcp = PacketLevelTcp(
            [SimLink(100.0, 10.0, loss_prob=2e-3, queue_packets=256)],
            np.random.default_rng(4),
            rwnd_bytes=1_048_576,
        )
        report = tstat_from_trace(capture(tcp, 15.0))
        assert 2e-4 <= report.retransmission_rate <= 5e-2

    def test_agrees_with_native_flowstats(self):
        """Trace-derived tstat ≈ the simulator's own accounting."""
        tcp = PacketLevelTcp(
            [SimLink(100.0, 15.0, loss_prob=1e-3)],
            np.random.default_rng(5),
            rwnd_bytes=1_048_576,
        )
        tcp.trace = []
        stats = tcp.run(15.0)
        report = tstat_from_trace(PacketTrace(records=tuple(tcp.trace), mss_bytes=tcp.mss))
        assert report.avg_rtt_ms == pytest.approx(stats.avg_rtt_ms, rel=0.35)
        assert report.bytes_total == stats.bytes_acked


class TestPacketPair:
    def test_accurate_on_honest_bottleneck(self):
        links = [SimLink(1_000.0, 5.0), SimLink(80.0, 10.0), SimLink(1_000.0, 5.0)]
        estimate = packet_pair_estimate(links)
        assert estimate.relative_error(80.0) < 0.05
        assert estimate_is_reliable(estimate, links)

    def test_misled_by_software_rate_limiter(self):
        """The paper's Sec. II-B observation, reproduced."""
        shaped_nic = SimLink(
            100.0, 0.2, shaper_burst_packets=64, line_rate_mbps=10_000.0
        )
        links = [shaped_nic, SimLink(1_000.0, 10.0)]
        estimate = packet_pair_estimate(links)
        # The probes ride the 10 Gbps line inside the burst, so the
        # estimator reports ~1 Gbps+ for a VM that really gets 100 Mbps.
        assert estimate.estimate_mbps > 5 * true_available_capacity_mbps(links)
        assert not estimate_is_reliable(estimate, links)

    def test_estimate_fields(self):
        links = [SimLink(50.0, 1.0)]
        estimate = packet_pair_estimate(links, pairs=7)
        assert isinstance(estimate, CapacityEstimate)
        assert estimate.samples == 7
        assert estimate.dispersion_s > 0

    def test_validation(self):
        with pytest.raises(MeasurementError):
            packet_pair_estimate([])
        with pytest.raises(MeasurementError):
            packet_pair_estimate([SimLink(10.0, 1.0)], pairs=0)
        with pytest.raises(MeasurementError):
            packet_pair_estimate([SimLink(10.0, 1.0)], probe_bytes=0)
        with pytest.raises(MeasurementError):
            true_available_capacity_mbps([])
        with pytest.raises(MeasurementError):
            CapacityEstimate(10.0, 1, 0.001).relative_error(0.0)


class TestShapedLinkMechanics:
    def test_shaped_link_bursts_then_throttles(self):
        """Sustained TCP through a shaper settles at the shaped rate."""
        shaped = SimLink(20.0, 5.0, shaper_burst_packets=32, line_rate_mbps=1_000.0)
        tcp = PacketLevelTcp([shaped], np.random.default_rng(6), rwnd_bytes=1_048_576)
        stats = tcp.run(10.0)
        assert stats.throughput_mbps == pytest.approx(20.0, rel=0.2)

    def test_shaper_validation(self):
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            SimLink(100.0, 1.0, shaper_burst_packets=-1)
        with pytest.raises(TransportError):
            SimLink(100.0, 1.0, shaper_burst_packets=8, line_rate_mbps=50.0)

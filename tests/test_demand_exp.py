"""E16 — the demand study: determinism, sharding parity, the headline."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.exec.runner import ExecConfig, ExecRunner
from repro.experiments.demand_exp import (
    RELAY_PORT_SPEED,
    DemandConfig,
    build_pair_routes,
    run_demand,
    run_demand_exec,
)
from repro.io import to_jsonable

SEED = 7
FAST = dict(seed=SEED, epochs=4, levels=(1.0, 8.0), epochs_per_shard=2)


@pytest.fixture(scope="module")
def fast_result():
    return run_demand(DemandConfig(**FAST))


class TestConfig:
    def test_rejects_bad_levels(self):
        with pytest.raises(ExperimentError):
            DemandConfig(levels=())
        with pytest.raises(ExperimentError):
            DemandConfig(levels=(1.0, -2.0))
        with pytest.raises(ExperimentError):
            DemandConfig(levels=(3.0, 3.0))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ExperimentError):
            DemandConfig(policies=("round-robin",))

    def test_rejects_bad_epochs(self):
        with pytest.raises(ExperimentError):
            DemandConfig(epochs=0)
        with pytest.raises(ExperimentError):
            DemandConfig(epochs_per_shard=0)

    def test_arms_cross_policies_and_levels(self):
        config = DemandConfig(levels=(1.0, 2.0), policies=("best-path", "anycast"))
        assert config.arms == (
            ("best-path", 1.0),
            ("best-path", 2.0),
            ("anycast", 1.0),
            ("anycast", 2.0),
        )

    def test_epoch_blocks_partition_the_epochs(self):
        config = DemandConfig(epochs=7, epochs_per_shard=3)
        assert config.epoch_blocks == ((0, 3), (3, 6), (6, 7))


class TestDeterminism:
    def test_two_serial_runs_identical(self, fast_result):
        again = run_demand(DemandConfig(**FAST))
        assert to_jsonable(fast_result) == to_jsonable(again)
        assert fast_result.render() == again.render()

    def test_exec_matches_serial_at_any_worker_count(self, fast_result, tmp_path):
        for workers in (1, 2):
            runner = ExecRunner(
                ExecConfig(workers=workers, cache_dir=tmp_path / f"w{workers}")
            )
            sharded = run_demand_exec(DemandConfig(**FAST), runner)
            assert to_jsonable(sharded) == to_jsonable(fast_result)
            assert sharded.render() == fast_result.render()


class TestHeadline:
    def test_low_load_reproduces_the_paper_win_rate(self, fast_result):
        # Sec. III-A: split-overlay improves 78 % of pairs.  With idle
        # relays every policy should sit in that band.
        for policy in fast_result.config.policies:
            assert 0.70 <= fast_result.arm(policy, 1.0).win_rate <= 0.90

    def test_low_load_win_rate_equals_split_fraction(self, fast_result):
        from repro.core.cronet import CRONet
        from repro.experiments.scenario import build_world

        world = build_world(seed=SEED, scale="small")
        cronet = CRONet.build(
            world.internet,
            world.cloud,
            list(world.dc_cities),
            port_speed=RELAY_PORT_SPEED,
        )
        at = fast_result.config.at_hours * 3_600.0
        wins = total = 0
        for pair in build_pair_routes(world, cronet, at):
            wins += max(rate for _, rate in pair.overlay_mbps) > pair.direct_mbps
            total += 1
        assert fast_result.arm("best-path", 1.0).win_rate == pytest.approx(wins / total)

    def test_load_inverts_the_win(self, fast_result):
        # At 8x the regional load the herding baseline loses its
        # majority; that is the study's inversion point.
        assert fast_result.arm("best-path", 8.0).win_rate < 0.5
        assert fast_result.inversion_level("best-path") == 8.0

    def test_qps_weighted_recovers_at_the_inversion(self, fast_result):
        recovered = fast_result.recovery()
        assert recovered is not None
        assert recovered > 0.0
        assert fast_result.arm("qps-weighted", 8.0).win_rate > fast_result.arm(
            "best-path", 8.0
        ).win_rate

    def test_win_rate_non_increasing_in_load(self, fast_result):
        for policy in fast_result.config.policies:
            rates = [
                fast_result.arm(policy, level).win_rate
                for level in sorted(fast_result.config.levels)
            ]
            assert rates == sorted(rates, reverse=True)

    def test_inversion_none_when_never_inverted(self):
        result = run_demand(DemandConfig(seed=SEED, epochs=2, levels=(1.0,)))
        assert result.inversion_level("best-path") is None
        assert result.recovery() is None

    def test_render_carries_the_headline(self, fast_result):
        rendered = fast_result.render()
        assert "demand study: 48 pairs" in rendered
        assert "inversion (best-path): level 8" in rendered
        assert "qps-weighted recovers" in rendered

    def test_unknown_arm_lookup_raises(self, fast_result):
        with pytest.raises(ExperimentError):
            fast_result.arm("best-path", 999.0)


class TestCli:
    def test_demand_verb_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["demand", "--seed", str(SEED), "--epochs", "2", "--level", "1", "--level", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "demand study: 48 pairs" in out
        assert "inversion (best-path)" in out

    def test_demand_verb_exec_parity(self, capsys, tmp_path):
        from repro.cli import main

        outputs = []
        for workers in ("1", "2"):
            code = main(
                [
                    "demand", "--seed", str(SEED), "--epochs", "2",
                    "--level", "1", "--workers", workers,
                    "--cache-dir", str(tmp_path / f"w{workers}"),
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

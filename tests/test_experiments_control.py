"""The failover study: acceptance criteria for `repro control`."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.control_exp import (
    ControlExpConfig,
    pick_unique_link,
    run_control,
)

CONFIG = ControlExpConfig(
    seed=7,
    scale="small",
    duration_s=1_800.0,
    tick_s=10.0,
    probe_interval_s=30.0,
    outage_start_s=450.0,
    outage_duration_s=600.0,
)


@pytest.fixture(scope="module")
def result():
    return run_control(CONFIG)


class TestFailoverStudy:
    def test_static_baseline_down_for_whole_outage(self, result):
        static = result.outcome("static-direct")
        assert static.downtime_s == pytest.approx(
            CONFIG.outage_duration_s, abs=CONFIG.tick_s
        )
        assert static.probe_bytes == 0

    def test_controller_restores_within_bounded_probe_intervals(self, result):
        controller = result.outcome("controller-best")
        bound = 3 * CONFIG.probe_interval_s + 2 * CONFIG.tick_s
        assert controller.downtime_s <= bound
        assert controller.recovery_s is not None
        assert controller.recovery_s <= bound
        assert controller.failovers >= 1

    def test_controller_beats_static_on_goodput(self, result):
        static = result.outcome("static-direct")
        controller = result.outcome("controller-best")
        assert controller.mean_goodput_mbps > static.mean_goodput_mbps
        assert controller.downtime_s < static.downtime_s

    def test_mptcp_rides_through_the_outage(self, result):
        mptcp = result.outcome("mptcp-subflows")
        assert mptcp.downtime_s <= CONFIG.tick_s
        assert mptcp.downtime_s <= result.outcome("controller-best").downtime_s

    def test_probe_overhead_accounted(self, result):
        for name in ("controller-best", "controller-c45", "mptcp-subflows"):
            outcome = result.outcome(name)
            assert outcome.probes_sent > 0
            assert outcome.probe_bytes > 0

    def test_metrics_snapshot_present_and_structured(self, result):
        metrics = result.controller_metrics
        assert metrics["probe_bytes_total"] > 0
        assert any(key.startswith("probes_sent_total{path=") for key in metrics)
        assert any(key.startswith("time_in_state_seconds{") for key in metrics)
        assert "failovers_total" in metrics

    def test_two_outages_target_distinct_paths(self, result):
        assert "direct" in result.failed_links
        assert len(result.failed_links) == 2
        link_ids = list(result.failed_links.values())
        assert len(set(link_ids)) == 2

    def test_render_mentions_every_strategy(self, result):
        rendered = result.render()
        for name in ("static-direct", "controller-best", "controller-c45", "mptcp-subflows"):
            assert name in rendered

    def test_unknown_strategy_lookup_rejected(self, result):
        with pytest.raises(ExperimentError):
            result.outcome("nope")


class TestDeterminism:
    def test_snapshot_identical_for_fixed_seed(self, result):
        again = run_control(CONFIG)
        assert again.controller_metrics == result.controller_metrics
        assert [o.downtime_s for o in again.outcomes] == [
            o.downtime_s for o in result.outcomes
        ]
        assert again.decision_log == result.decision_log
        assert again.failed_links == result.failed_links


class TestConfigValidation:
    def test_outage_must_fit_horizon(self):
        with pytest.raises(ExperimentError):
            ControlExpConfig(duration_s=100.0, outage_start_s=90.0, outage_duration_s=60.0)

    def test_pick_unique_link_requires_disjoint_link(self, result):
        # Guard utility: identical paths can never be isolated.
        from repro.experiments.scenario import build_world

        world = build_world(seed=3, scale="small")
        cronet = world.cronet()
        pathset = cronet.path_set(world.server_names[0], world.client_names()[0])
        with pytest.raises(ExperimentError):
            pick_unique_link(pathset.direct, [pathset.direct])

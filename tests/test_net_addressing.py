"""IPv4 addressing plan."""

from __future__ import annotations

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, TopologyError
from repro.net.addressing import AddressPlan


class TestAllocation:
    def test_distinct_blocks_per_as(self):
        plan = AddressPlan()
        a = plan.allocate_as(100)
        b = plan.allocate_as(101)
        assert not a.network.overlaps(b.network)
        assert plan.allocate_as(100) is a  # idempotent

    def test_unallocated_as_rejected(self):
        with pytest.raises(TopologyError):
            AddressPlan().allocation_of(999)

    def test_router_addresses_unique_and_inside_block(self):
        plan = AddressPlan()
        addresses = {plan.assign_router(rid, 100) for rid in range(1, 50)}
        assert len(addresses) == 49
        block = plan.allocation_of(100).network
        for address in addresses:
            assert ipaddress.ip_address(address) in block

    def test_host_addresses_from_top_of_block(self):
        plan = AddressPlan()
        router = plan.assign_router(1, 100)
        host = plan.assign_host("h1", 100)
        block = plan.allocation_of(100).network
        assert ipaddress.ip_address(host) in block
        assert ipaddress.ip_address(host) > ipaddress.ip_address(router)

    def test_assignments_idempotent(self):
        plan = AddressPlan()
        assert plan.assign_router(7, 100) == plan.assign_router(7, 100)
        assert plan.assign_host("x", 100) == plan.assign_host("x", 100)

    def test_owner_lookup(self):
        plan = AddressPlan()
        address = plan.assign_host("x", 123)
        assert plan.owner_of(address) == 123
        with pytest.raises(TopologyError):
            plan.owner_of("192.0.2.1")

    def test_unassigned_lookups_rejected(self):
        plan = AddressPlan()
        with pytest.raises(TopologyError):
            plan.router_address(1)
        with pytest.raises(TopologyError):
            plan.host_address("ghost")

    def test_negative_indices_rejected(self):
        plan = AddressPlan()
        allocation = plan.allocate_as(5)
        with pytest.raises(ConfigError):
            allocation.router_address(-1)
        with pytest.raises(ConfigError):
            allocation.host_address(-1)

    @given(st.lists(st.integers(min_value=1, max_value=5_000), min_size=1,
                    max_size=150, unique=True))
    def test_all_router_addresses_distinct(self, router_ids):
        """Across several ASes, every router address is unique."""
        plan = AddressPlan()
        addresses = [plan.assign_router(rid, 100 + rid % 7) for rid in router_ids]
        assert len(set(addresses)) == len(addresses)


class TestWorldIntegration:
    def test_hosts_get_addresses(self, small_internet):
        for host in small_internet.hosts.values():
            assert host.ip_address != "0.0.0.0"
            assert small_internet.addresses.owner_of(host.ip_address) == host.asn

    def test_routers_get_addresses(self, small_internet):
        for router in small_internet.routers:
            address = small_internet.addresses.router_address(router.router_id)
            assert small_internet.addresses.owner_of(address) == router.asn

    def test_traceroute_shows_addresses(self, small_internet):
        from repro.measure import traceroute

        path = small_internet.resolve_path("client", "server")
        hops = traceroute(small_internet, path, 0.0)
        assert all(hop.address != "0.0.0.0" for hop in hops)
        assert hops[0].address == small_internet.host("client").ip_address

    def test_overlay_node_nat_uses_public_ip(self, small_internet):
        from repro.tunnel import OverlayNode

        node = OverlayNode(host=small_internet.host("vm"))
        assert node.nat.nat_ip == small_internet.host("vm").ip_address

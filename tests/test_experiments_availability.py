"""Availability under injected failures (extension experiment)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.availability import AvailabilityConfig, run_availability


@pytest.fixture(scope="module")
def availability():
    return run_availability(
        AvailabilityConfig(
            seed=17, n_pairs=5, duration_hours=12.0, outages=40, outage_duration_s=3_600.0
        )
    )


class TestAvailability:
    def test_strategy_ordering(self, availability):
        """More paths never hurt: mptcp >= static >= direct."""
        a = availability.availability()
        assert a["cronet-mptcp"] >= a["cronet-static"] >= a["direct-only"]

    def test_availability_in_unit_range(self, availability):
        for value in availability.availability().values():
            assert 0.0 <= value <= 1.0

    def test_outages_actually_injected(self, availability):
        assert availability.outages_injected == 40
        # With 40 hour-long outages in 12 h, something must go down.
        assert availability.availability()["direct-only"] < 1.0

    def test_overlay_masks_some_outages(self, availability):
        a = availability.availability()
        assert a["cronet-mptcp"] > a["direct-only"]

    def test_render(self, availability):
        text = availability.render()
        assert "availability" in text
        assert "cronet-mptcp" in text

    def test_config_validation(self):
        with pytest.raises(ExperimentError):
            AvailabilityConfig(n_pairs=0)


class TestNoFailures:
    def test_everything_up_without_outages(self):
        result = run_availability(
            AvailabilityConfig(seed=17, n_pairs=3, duration_hours=3.0, outages=0)
        )
        assert result.availability() == {
            "direct-only": 1.0,
            "cronet-static": 1.0,
            "cronet-mptcp": 1.0,
        }

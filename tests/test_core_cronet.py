"""CRONet node index: O(1) lookup, duplicate rejection."""

from __future__ import annotations

import pytest

from repro.core.cronet import CRONet
from repro.errors import ConfigError
from repro.tunnel.node import OverlayNode


def _vm_node(small_internet) -> OverlayNode:
    return OverlayNode(host=small_internet.host("vm"))


class TestNodeIndex:
    def test_lookup_by_name(self, small_internet):
        node = _vm_node(small_internet)
        overlay = CRONet(internet=small_internet, provider=None, nodes=[node])
        assert overlay.node("vm") is node

    def test_unknown_name_rejected_with_context(self, small_internet):
        overlay = CRONet(
            internet=small_internet, provider=None, nodes=[_vm_node(small_internet)]
        )
        with pytest.raises(ConfigError, match="vm"):
            overlay.node("missing")

    def test_duplicate_names_rejected_at_build(self, small_internet):
        node = _vm_node(small_internet)
        with pytest.raises(ConfigError, match="duplicate"):
            CRONet(internet=small_internet, provider=None, nodes=[node, node])

    def test_add_node_keeps_index_consistent(self, small_internet):
        overlay = CRONet(internet=small_internet, provider=None, nodes=[])
        node = _vm_node(small_internet)
        overlay.add_node(node)
        assert overlay.node("vm") is node
        with pytest.raises(ConfigError, match="duplicate"):
            overlay.add_node(_vm_node(small_internet))

    def test_subset_reindexes(self, small_internet):
        node = _vm_node(small_internet)
        overlay = CRONet(internet=small_internet, provider=None, nodes=[node])
        view = overlay.subset(["vm"])
        assert view.node("vm") is node
        assert view.node_names == ["vm"]

"""Fault-event taxonomy: effects as pure functions of time."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.events import (
    NO_EFFECT,
    AsOutage,
    CongestionStorm,
    GrayFailure,
    LinkEffect,
    LinkOutage,
    PopOutage,
    ProbeFaultEvent,
    ProbeFaultKind,
    RouteFlap,
    Window,
    window_for,
)
from repro.rand import RandomStreams


class TestWindow:
    def test_half_open(self):
        window = Window(start_s=10.0, duration_s=5.0)
        assert not window.covers(9.999)
        assert window.covers(10.0)
        assert window.covers(14.999)
        assert not window.covers(15.0)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            Window(start_s=-1.0, duration_s=5.0)
        with pytest.raises(ConfigError):
            Window(start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigError):
            window_for(float("inf"), 1.0)


class TestLinkEffect:
    def test_merge_outage_dominates(self):
        merged = LinkEffect(failed=True).merge(LinkEffect(extra_loss=0.2))
        assert merged.failed
        assert merged.extra_loss == pytest.approx(0.2)

    def test_merge_losses_combine_independently(self):
        merged = LinkEffect(extra_loss=0.5).merge(LinkEffect(extra_loss=0.5))
        assert merged.extra_loss == pytest.approx(0.75)

    def test_merge_delay_adds_and_surge_caps(self):
        merged = LinkEffect(extra_delay_ms=10.0, util_surge=0.7).merge(
            LinkEffect(extra_delay_ms=5.0, util_surge=0.7)
        )
        assert merged.extra_delay_ms == pytest.approx(15.0)
        assert merged.util_surge == pytest.approx(1.0)


class TestDataPlaneEvents:
    def test_link_outage_only_inside_window(self):
        event = LinkOutage(link_ids=(3, 1), window=Window(100.0, 50.0))
        assert event.link_ids == (1, 3)  # sorted
        assert event.effect_at(99.0) is NO_EFFECT
        assert event.effect_at(100.0).failed
        assert event.effect_at(150.0) is NO_EFFECT

    def test_duplicate_and_empty_links_rejected(self):
        with pytest.raises(ConfigError):
            LinkOutage(link_ids=(), window=Window(0.0, 1.0))
        with pytest.raises(ConfigError):
            LinkOutage(link_ids=(1, 1), window=Window(0.0, 1.0))

    def test_as_outage_collects_as_links(self, small_internet):
        asn = next(iter(small_internet.topology.ases))
        event = AsOutage.for_as(small_internet, asn, Window(0.0, 10.0))
        routers = {r.router_id for r in small_internet.routers.of_as(asn)}
        for link_id in event.link_ids:
            link = small_internet.links_by_id[link_id]
            assert link.router_a in routers or link.router_b in routers
        assert f"AS{asn}" in event.describe()

    def test_pop_outage_collects_only_pop_links(self, small_internet):
        asys = next(
            a for a in small_internet.topology.ases.values() if len(a.pop_cities) >= 2
        )
        city = asys.pop_cities[0]
        router = small_internet.routers.at(asys.asn, city)
        event = PopOutage.for_pop(small_internet, asys.asn, city, Window(0.0, 10.0))
        for link_id in event.link_ids:
            link = small_internet.links_by_id[link_id]
            assert router.router_id in (link.router_a, link.router_b)
        assert f"AS{asys.asn}@{city}" in event.describe()
        assert event.down_windows() == (event.window,)

    def test_pop_outage_unknown_city_rejected(self, small_internet):
        asn = next(iter(small_internet.topology.ases))
        with pytest.raises(ConfigError):
            PopOutage.for_pop(small_internet, asn, "atlantis", Window(0.0, 10.0))


class TestOutageAlgebra:
    """Per-PoP outages partition an AS outage's link set."""

    def multi_pop_as(self, small_internet):
        return next(
            a for a in small_internet.topology.ases.values() if len(a.pop_cities) >= 3
        )

    def test_union_of_pop_outages_is_the_as_outage(self, small_internet):
        asys = self.multi_pop_as(small_internet)
        window = Window(0.0, 10.0)
        whole = set(AsOutage.for_as(small_internet, asys.asn, window).link_ids)
        union: set[int] = set()
        for city in asys.pop_cities:
            union |= set(
                PopOutage.for_pop(small_internet, asys.asn, city, window).link_ids
            )
        assert union == whole

    def test_non_adjacent_pops_fail_disjoint_links(self, small_internet):
        # Two PoPs of one AS with no direct backbone link between them
        # must take down disjoint link sets — the partial outages are
        # independent events.
        for asys in small_internet.topology.ases.values():
            if len(asys.pop_cities) < 5:
                continue
            routers = {
                city: small_internet.routers.at(asys.asn, city)
                for city in asys.pop_cities
            }
            for i, city_a in enumerate(asys.pop_cities):
                for city_b in asys.pop_cities[i + 1 :]:
                    pair = (
                        routers[city_a].router_id,
                        routers[city_b].router_id,
                    )
                    if pair in small_internet._internal:
                        continue
                    window = Window(0.0, 10.0)
                    first = set(
                        PopOutage.for_pop(
                            small_internet, asys.asn, city_a, window
                        ).link_ids
                    )
                    second = set(
                        PopOutage.for_pop(
                            small_internet, asys.asn, city_b, window
                        ).link_ids
                    )
                    assert not (first & second)
                    return
        pytest.skip("no non-adjacent PoP pair in this topology")


class TestImpairmentEvents:
    def test_gray_failure_effect(self):
        event = GrayFailure(
            link_ids=(1,), window=Window(0.0, 10.0), drop_fraction=0.3,
            extra_delay_ms=20.0,
        )
        effect = event.effect_at(5.0)
        assert not effect.failed
        assert effect.extra_loss == pytest.approx(0.3)
        assert effect.extra_delay_ms == pytest.approx(20.0)

    def test_gray_failure_validation(self):
        with pytest.raises(ConfigError):
            GrayFailure(link_ids=(1,), window=Window(0.0, 1.0), drop_fraction=0.0)
        with pytest.raises(ConfigError):
            GrayFailure(
                link_ids=(1,), window=Window(0.0, 1.0), drop_fraction=0.5,
                extra_delay_ms=-1.0,
            )

    def test_storm_effect(self):
        event = CongestionStorm(link_ids=(1,), window=Window(0.0, 10.0), surge=0.4)
        assert event.effect_at(1.0).util_surge == pytest.approx(0.4)
        with pytest.raises(ConfigError):
            CongestionStorm(link_ids=(1,), window=Window(0.0, 1.0), surge=0.0)


class TestRouteFlap:
    def flap(self) -> RouteFlap:
        return RouteFlap(
            link_ids=(1,), window=Window(100.0, 100.0), period_s=20.0, duty=0.5
        )

    def test_cycles_withdraw_then_announce(self):
        event = self.flap()
        assert event.effect_at(105.0).failed  # first half: withdrawn
        assert event.effect_at(115.0) is NO_EFFECT  # second half: announced
        assert event.effect_at(125.0).failed  # next cycle
        assert event.effect_at(99.0) is NO_EFFECT
        assert event.effect_at(200.0) is NO_EFFECT

    def test_phase_changes_at_every_edge(self):
        event = self.flap()
        phases = [event.phase_at(t) for t in (99.0, 105.0, 115.0, 125.0, 135.0, 200.0)]
        assert phases[0] == 0
        assert len(set(phases[:5])) == 5  # every sampled half-cycle distinct
        assert phases[-1] == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RouteFlap(link_ids=(1,), window=Window(0.0, 10.0), period_s=20.0)
        with pytest.raises(ConfigError):
            RouteFlap(link_ids=(1,), window=Window(0.0, 10.0), period_s=5.0, duty=1.0)


class TestProbeFaultEvent:
    def test_window_and_label_scoping(self):
        rng = RandomStreams(seed=1).stream("t")
        event = ProbeFaultEvent(
            window=Window(0.0, 10.0), fault=ProbeFaultKind.LOST, labels=("direct",)
        )
        assert event.applies("direct", 5.0, rng)
        assert not event.applies("vm", 5.0, rng)
        assert not event.applies("direct", 10.0, rng)

    def test_intermittent_fault_draws_from_stream(self):
        event = ProbeFaultEvent(
            window=Window(0.0, 1000.0), fault=ProbeFaultKind.TIMEOUT, probability=0.5
        )
        rng = RandomStreams(seed=1).stream("t")
        hits = sum(event.applies("direct", float(t), rng) for t in range(200))
        assert 60 < hits < 140
        rng2 = RandomStreams(seed=1).stream("t")
        hits2 = sum(event.applies("direct", float(t), rng2) for t in range(200))
        assert hits == hits2  # same stream, same faults

    def test_probability_validated(self):
        with pytest.raises(ConfigError):
            ProbeFaultEvent(
                window=Window(0.0, 1.0), fault=ProbeFaultKind.LOST, probability=0.0
            )


class TestBulkExtraLoss:
    def test_effects_compose_multiplicatively(self):
        merged = LinkEffect(bulk_extra_loss=0.5).merge(
            LinkEffect(bulk_extra_loss=0.5)
        )
        assert merged.bulk_extra_loss == pytest.approx(0.75)

    def test_bulk_only_gray_effect(self):
        event = GrayFailure(
            link_ids=(1,),
            window=Window(0.0, 100.0),
            drop_fraction=0.4,
            extra_delay_ms=25.0,
            bulk_only=True,
        )
        effect = event.effect_at(50.0)
        assert effect.extra_loss == 0.0
        assert effect.bulk_extra_loss == pytest.approx(0.4)
        assert effect.extra_delay_ms == pytest.approx(25.0)

    def test_visible_gray_leaves_bulk_channel_alone(self):
        event = GrayFailure(
            link_ids=(1,), window=Window(0.0, 100.0), drop_fraction=0.4
        )
        effect = event.effect_at(50.0)
        assert effect.extra_loss == pytest.approx(0.4)
        assert effect.bulk_extra_loss == 0.0


class TestDownWindows:
    def test_outage_reports_its_window(self):
        window = Window(100.0, 50.0)
        event = LinkOutage(link_ids=(1,), window=window)
        assert event.down_windows() == (window,)

    def test_route_flap_reports_each_withdraw_phase(self):
        event = RouteFlap(
            link_ids=(1,), window=Window(100.0, 100.0), period_s=30.0, duty=0.5
        )
        windows = event.down_windows()
        assert [w.start_s for w in windows] == [100.0, 130.0, 160.0, 190.0]
        assert [w.duration_s for w in windows[:3]] == [15.0, 15.0, 15.0]
        # Final phase is truncated at the event window's end.
        assert windows[-1].duration_s == pytest.approx(10.0)

    def test_soft_events_report_none(self):
        gray = GrayFailure(
            link_ids=(1,), window=Window(0.0, 100.0), drop_fraction=0.5
        )
        storm = CongestionStorm(link_ids=(1,), window=Window(0.0, 100.0), surge=0.3)
        assert gray.down_windows() == ()
        assert storm.down_windows() == ()

"""PlanetLab population: distributions, caps, deployment."""

from __future__ import annotations

import pytest

from repro.errors import PlanetLabError
from repro.planetlab import (
    CONTROLLED_DISTRIBUTION,
    WEBLAB_DISTRIBUTION,
    PlanetLabDeployment,
    PlanetLabNode,
    deploy_planetlab,
)
from repro.planetlab.nodes import THROTTLED_FRACTION
from repro.planetlab.sites import scale_distribution


class TestDistributions:
    def test_paper_counts(self):
        # Sec. II-A: >100 nodes; Sec. II-B: 50 nodes.
        assert sum(WEBLAB_DISTRIBUTION.values()) == 110
        assert sum(CONTROLLED_DISTRIBUTION.values()) == 50

    def test_scale_preserves_total(self):
        for total in (5, 12, 50, 110, 200):
            scaled = scale_distribution(WEBLAB_DISTRIBUTION, total)
            assert sum(scaled.values()) == total

    def test_scale_below_region_count_terminates(self):
        """Regression: totals smaller than the number of populated
        regions used to loop forever; now the largest regions win."""
        for total in (1, 2, 3, 4):
            scaled = scale_distribution(WEBLAB_DISTRIBUTION, total)
            assert sum(scaled.values()) == total
            assert scaled["eu"] == 1  # the largest region always survives

    def test_scale_keeps_regions_alive(self):
        scaled = scale_distribution(WEBLAB_DISTRIBUTION, 10)
        for region, count in WEBLAB_DISTRIBUTION.items():
            if count > 0:
                assert scaled[region] >= 1

    def test_scale_rejects_bad_input(self):
        with pytest.raises(PlanetLabError):
            scale_distribution(WEBLAB_DISTRIBUTION, 0)
        with pytest.raises(PlanetLabError):
            scale_distribution({"eu": 0}, 5)


class TestDeployment:
    def test_regional_placement(self, small_internet):
        from repro.rand import RandomStreams

        deployment = deploy_planetlab(
            small_internet, {"eu": 3, "na": 2}, RandomStreams(seed=5), name_prefix="t"
        )
        assert len(deployment) == 5
        by_region = deployment.by_region()
        assert len(by_region.get("eu", [])) == 3
        assert len(by_region.get("na", [])) == 2

    def test_nodes_live_in_academic_ases(self, small_internet):
        from repro.net.asn import ASKind
        from repro.rand import RandomStreams

        deployment = deploy_planetlab(
            small_internet, {"eu": 2}, RandomStreams(seed=5), name_prefix="t2"
        )
        for node in deployment:
            asys = small_internet.topology.ases[node.host.asn]
            assert asys.kind is ASKind.ACADEMIC

    def test_heterogeneous_receive_windows(self, small_internet):
        from repro.rand import RandomStreams

        deployment = deploy_planetlab(
            small_internet, {"eu": 6, "na": 4}, RandomStreams(seed=5), name_prefix="t3"
        )
        windows = {node.host.rwnd_bytes for node in deployment}
        assert len(windows) > 3

    def test_empty_deployment_rejected(self):
        with pytest.raises(PlanetLabError):
            PlanetLabDeployment(nodes=[])


class TestOutboundCap:
    def _node(self, small_internet):
        host = small_internet.host("client")
        return PlanetLabNode(host=host, daily_cap_bytes=1_000)

    def test_throttles_after_cap(self, small_internet):
        node = self._node(small_internet)
        assert node.outbound_rate_factor(day=0) == 1.0
        node.record_outbound(day=0, size_bytes=2_000)
        assert node.is_throttled(day=0)
        assert node.outbound_rate_factor(day=0) == THROTTLED_FRACTION

    def test_caps_are_per_day(self, small_internet):
        node = self._node(small_internet)
        node.record_outbound(day=0, size_bytes=2_000)
        assert not node.is_throttled(day=1)
        assert node.outbound_rate_factor(day=1) == 1.0

    def test_negative_size_rejected(self, small_internet):
        node = self._node(small_internet)
        with pytest.raises(PlanetLabError):
            node.record_outbound(day=0, size_bytes=-1)

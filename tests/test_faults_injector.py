"""FaultInjector: correlated events applied against a live Internet."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.events import (
    AsOutage,
    GrayFailure,
    LinkOutage,
    ProbeFaultEvent,
    ProbeFaultKind,
    RouteFlap,
    Window,
)
from repro.faults.injector import FaultInjector, ProbeFaultModel
from repro.rand import RandomStreams


def any_link(small_internet):
    return next(iter(small_internet.links_by_id.values()))


class TestInjection:
    def test_outage_follows_clock(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(LinkOutage(link_ids=(link.link_id,), window=Window(100.0, 50.0)))
        injector.install()
        assert not link.failed
        small_internet.set_time(120.0)
        assert link.failed
        small_internet.set_time(160.0)
        assert not link.failed

    def test_unknown_link_rejected(self, small_internet):
        injector = FaultInjector(small_internet)
        with pytest.raises(ConfigError):
            injector.add(LinkOutage(link_ids=(999_999,), window=Window(0.0, 1.0)))

    def test_as_outage_fails_every_as_link(self, small_internet):
        asn = next(iter(small_internet.topology.ases))
        event = AsOutage.for_as(small_internet, asn, Window(50.0, 100.0))
        injector = FaultInjector(small_internet)
        injector.add(event)
        injector.install()
        small_internet.set_time(75.0)
        assert all(
            small_internet.links_by_id[link_id].failed for link_id in event.link_ids
        )
        small_internet.set_time(200.0)
        assert not any(
            small_internet.links_by_id[link_id].failed for link_id in event.link_ids
        )

    def test_gray_failure_impairs_without_failing(self, small_internet):
        link = any_link(small_internet)
        clean_loss = link.loss(120.0)
        clean_delay = link.one_way_delay_ms(120.0)
        injector = FaultInjector(small_internet)
        injector.add(
            GrayFailure(
                link_ids=(link.link_id,), window=Window(100.0, 50.0),
                drop_fraction=0.3, extra_delay_ms=25.0,
            )
        )
        injector.install()
        small_internet.set_time(120.0)
        assert not link.failed
        assert link.impaired
        assert link.loss(120.0) > clean_loss
        assert link.one_way_delay_ms(120.0) == pytest.approx(clean_delay + 25.0)
        small_internet.set_time(200.0)
        assert not link.impaired

    def test_uninstall_restores_everything(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(LinkOutage(link_ids=(link.link_id,), window=Window(0.0, 100.0)))
        injector.add(
            GrayFailure(
                link_ids=(link.link_id,), window=Window(0.0, 100.0), drop_fraction=0.5
            )
        )
        injector.install()
        assert link.failed
        injector.uninstall()
        assert not link.failed
        assert not link.impaired
        assert injector.apply not in small_internet.clock_hooks

    def test_rewind_replays_identically(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(LinkOutage(link_ids=(link.link_id,), window=Window(100.0, 50.0)))
        injector.install()

        def states():
            out = []
            small_internet.set_time(0.0)
            for _ in range(20):
                small_internet.advance(10.0)
                out.append(link.failed)
            return out

        assert states() == states()


class TestLegacyScheduleOverlap:
    def test_injector_never_restores_legacy_held_link(self, small_internet):
        # Legacy schedule holds [100, 300); the injected event ends at
        # 200 — the link must stay down until *both* windows clear.
        link = any_link(small_internet)
        small_internet.failures.schedule(link.link_id, 100.0, 200.0)
        injector = FaultInjector(small_internet)
        injector.add(LinkOutage(link_ids=(link.link_id,), window=Window(150.0, 50.0)))
        injector.install()
        small_internet.set_time(175.0)
        assert link.failed
        small_internet.set_time(250.0)  # injected event over, legacy still active
        assert link.failed
        small_internet.set_time(350.0)
        assert not link.failed


class TestRouteFlapEdges:
    def test_each_edge_invalidates_path_cache(self, small_internet):
        link = any_link(small_internet)
        path = small_internet.resolve_path("client", "server")
        assert small_internet.resolve_path("client", "server") is path  # cached
        injector = FaultInjector(small_internet)
        injector.add(
            RouteFlap(
                link_ids=(link.link_id,), window=Window(100.0, 100.0), period_s=20.0
            )
        )
        injector.install()
        small_internet.set_time(105.0)  # idle -> withdrawn edge
        recomputed = small_internet.resolve_path("client", "server")
        assert recomputed is not path
        assert injector.route_recomputations >= 1
        before = injector.route_recomputations
        small_internet.set_time(115.0)  # withdrawn -> announced edge
        assert injector.route_recomputations == before + 1
        small_internet.set_time(116.0)  # no edge: same half-cycle
        assert injector.route_recomputations == before + 1


class TestProbeFaultModel:
    def test_first_matching_event_wins_and_counts(self):
        events = [
            ProbeFaultEvent(window=Window(0.0, 10.0), fault=ProbeFaultKind.LOST),
            ProbeFaultEvent(window=Window(0.0, 100.0), fault=ProbeFaultKind.STALE),
        ]
        model = ProbeFaultModel(events, RandomStreams(seed=2).stream("pf"))
        assert model.outcome("direct", 5.0) is ProbeFaultKind.LOST
        assert model.outcome("direct", 50.0) is ProbeFaultKind.STALE
        assert model.outcome("direct", 200.0) is None
        assert model.struck["lost"] == 1
        assert model.struck["stale"] == 1


class TestBulkOnlyGray:
    def test_bulk_only_gray_spares_pings(self, small_internet):
        link = any_link(small_internet)
        clean_loss = link.loss(120.0)
        injector = FaultInjector(small_internet)
        injector.add(
            GrayFailure(
                link_ids=(link.link_id,), window=Window(100.0, 50.0),
                drop_fraction=0.4, bulk_only=True,
            )
        )
        injector.install()
        small_internet.set_time(120.0)
        assert not link.failed
        # Pings see nothing; bulk segments pay the silent drop.
        assert link.loss(120.0) == pytest.approx(clean_loss)
        assert link.bulk_loss(120.0) > link.loss(120.0)
        small_internet.set_time(200.0)
        assert link.bulk_loss(200.0) == link.loss(200.0)
        injector.uninstall()


class TestFaultHistoryQueries:
    def test_down_windows_merges_outages_and_flaps(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(LinkOutage(link_ids=(link.link_id,), window=Window(500.0, 50.0)))
        injector.add(
            RouteFlap(
                link_ids=(link.link_id,), window=Window(100.0, 100.0), period_s=20.0
            )
        )
        windows = injector.down_windows(link.link_id)
        # 5 withdraw phases of the flap plus the outage, sorted by start.
        assert len(windows) == 6
        assert [w.start_s for w in windows[:5]] == [100.0, 120.0, 140.0, 160.0, 180.0]
        assert windows[-1].start_s == 500.0

    def test_down_windows_range_filter(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(
            RouteFlap(
                link_ids=(link.link_id,), window=Window(100.0, 100.0), period_s=20.0
            )
        )
        assert injector.flap_count(link.link_id) == 5
        assert injector.flap_count(link.link_id, since=150.0) == 2
        assert injector.flap_count(link.link_id, since=150.0, until=170.0) == 1
        assert injector.flap_count(link.link_id, since=300.0) == 0

    def test_repeated_pop_outages_count_as_flaps(self, small_internet):
        from repro.faults.events import PopOutage

        asys = next(
            a for a in small_internet.topology.ases.values() if len(a.pop_cities) >= 2
        )
        city = asys.pop_cities[0]
        injector = FaultInjector(small_internet)
        episodes = [
            PopOutage.for_pop(
                small_internet, asys.asn, city, Window(start, 50.0)
            )
            for start in (100.0, 300.0, 500.0)
        ]
        for episode in episodes:
            injector.add(episode)
        for link_id in episodes[0].link_ids:
            assert injector.flap_count(link_id) == 3
            assert [w.start_s for w in injector.down_windows(link_id)] == [
                100.0, 300.0, 500.0,
            ]

    def test_pop_outage_follows_clock(self, small_internet):
        from repro.faults.events import PopOutage
        from repro.net.world import HOST_ID_BASE

        asys = next(
            a for a in small_internet.topology.ases.values() if len(a.pop_cities) >= 2
        )
        event = PopOutage.for_pop(
            small_internet, asys.asn, asys.pop_cities[0], Window(100.0, 50.0)
        )
        injector = FaultInjector(small_internet)
        injector.add(event)
        injector.install()
        links = [small_internet.links_by_id[lid] for lid in event.link_ids]
        small_internet.set_time(120.0)
        assert all(link.failed for link in links)
        # Partial outage: the AS keeps other live links (sibling PoPs).
        survivors = [
            link
            for link in small_internet.links_by_id.values()
            if not link.failed
            and any(
                small_internet.routers.get(rid).asn == asys.asn
                for rid in (link.router_a, link.router_b)
                if rid < HOST_ID_BASE
            )
        ]
        assert survivors
        small_internet.set_time(200.0)
        assert not any(link.failed for link in links)

    def test_gray_failures_have_no_down_windows(self, small_internet):
        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(
            GrayFailure(
                link_ids=(link.link_id,), window=Window(0.0, 100.0), drop_fraction=0.5
            )
        )
        assert injector.down_windows(link.link_id) == ()
        assert injector.flap_count(link.link_id) == 0

    def test_unknown_link_query_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            FaultInjector(small_internet).down_windows(999_999)


class TestPathFaultHistory:
    def test_counts_per_label_within_window(self, small_internet):
        from repro.faults.injector import PathFaultHistory

        link = any_link(small_internet)
        injector = FaultInjector(small_internet)
        injector.add(
            RouteFlap(
                link_ids=(link.link_id,), window=Window(100.0, 100.0), period_s=20.0
            )
        )
        history = PathFaultHistory(
            injector, {"flappy": (link.link_id,)}, window_s=150.0
        )
        # At t=250 the 150 s window covers the flap onsets at 100..180.
        assert history.recent_failures("flappy", 250.0) == 5
        # At t=500 every onset has aged out of the window.
        assert history.recent_failures("flappy", 500.0) == 0
        # Labels the injector never touched have no history.
        assert history.recent_failures("unknown", 250.0) == 0

    def test_window_validated(self, small_internet):
        from repro.faults.injector import PathFaultHistory

        with pytest.raises(ConfigError):
            PathFaultHistory(FaultInjector(small_internet), {}, window_s=0.0)

"""Cloud provider: deployment, VM rental, pricing."""

from __future__ import annotations

import pytest

from repro.cloud import (
    CloudProvider,
    PortSpeed,
    PricingModel,
    TrafficTier,
    leased_line_monthly_usd,
    overlay_vs_leased_line,
)
from repro.cloud.datacenter import (
    MPTCP_DC_CITIES,
    PAPER_DC_CITIES,
    DataCenter,
    validate_dc_cities,
)
from repro.errors import BillingError, CloudError
from repro.geo import city
from repro.net import Internet, LinkClass, TopologyConfig, generate_topology
from repro.net.asn import ASKind
from repro.rand import RandomStreams


@pytest.fixture()
def cloudy_world():
    streams = RandomStreams(seed=99)
    topo = generate_topology(TopologyConfig.small(), streams)
    provider = CloudProvider.deploy(topo, ("dallas", "amsterdam", "tokyo"), streams)
    internet = Internet(topo, streams)
    return internet, provider


class TestDataCenters:
    def test_paper_cities(self):
        assert len(PAPER_DC_CITIES) == 5  # Sec. II-A
        assert len(MPTCP_DC_CITIES) == 9  # Sec. VI-B

    def test_validate_rejects_duplicates(self):
        with pytest.raises(CloudError):
            validate_dc_cities(("tokyo", "tokyo"))
        with pytest.raises(CloudError):
            validate_dc_cities(())

    def test_datacenter_city(self):
        dc = DataCenter(name="dallas", city_name="dallas")
        assert dc.city == city("dallas")


class TestDeploy:
    def test_cloud_as_created(self, cloudy_world):
        internet, provider = cloudy_world
        asys = internet.topology.ases[provider.asn]
        assert asys.kind is ASKind.CLOUD
        assert set(asys.pop_cities) == {"dallas", "amsterdam", "tokyo"}

    def test_multihomed_and_peered(self, cloudy_world):
        internet, provider = cloudy_world
        assert len(internet.topology.providers_of(provider.asn)) >= 2
        assert internet.topology.peers_of(provider.asn)

    def test_backbone_exists(self, cloudy_world):
        internet, _provider = cloudy_world
        assert internet.links_of_class(LinkClass.CLOUD_BACKBONE)


class TestRentVm:
    def test_vm_lands_in_its_dc(self, cloudy_world):
        internet, provider = cloudy_world
        server = provider.rent_vm(internet, "amsterdam")
        assert server.host.city_name == "amsterdam"
        assert server.host.kind == "cloud_vm"
        assert server.rate_limit_mbps == 100.0

    def test_vm_access_is_clean(self, cloudy_world):
        internet, provider = cloudy_world
        server = provider.rent_vm(internet, "tokyo")
        assert server.host.access_link.base_loss <= 1e-5
        assert server.host.access_link.load.base_util <= 0.05

    def test_unknown_dc_rejected(self, cloudy_world):
        internet, provider = cloudy_world
        with pytest.raises(CloudError):
            provider.rent_vm(internet, "portland")

    def test_billing(self, cloudy_world):
        internet, provider = cloudy_world
        s1 = provider.rent_vm(internet, "dallas")
        s2 = provider.rent_vm(internet, "tokyo", port_speed=PortSpeed.GBPS_1)
        assert provider.monthly_bill_usd() == pytest.approx(
            s1.monthly_cost_usd + s2.monthly_cost_usd
        )
        provider.release_vm(s1)
        assert provider.monthly_bill_usd() == pytest.approx(s2.monthly_cost_usd)
        with pytest.raises(CloudError):
            provider.release_vm(s1)

    def test_port_speed_sets_nic(self, cloudy_world):
        internet, provider = cloudy_world
        server = provider.rent_vm(internet, "dallas", port_speed=PortSpeed.GBPS_10)
        assert server.host.nic_mbps == 10_000.0


class TestPricing:
    def test_base_vm_is_about_20(self):
        # Sec. I: "starting at about $20 per month".
        price = PricingModel().vm_monthly_usd(
            PortSpeed.MBPS_100, TrafficTier.GB_1000, bare_metal=False
        )
        assert 15.0 <= price <= 30.0

    def test_monotone_in_port_speed(self):
        model = PricingModel()
        prices = [
            model.vm_monthly_usd(port, TrafficTier.GB_1000) for port in PortSpeed
        ]
        assert prices == sorted(prices)

    def test_monotone_in_traffic(self):
        model = PricingModel()
        tiers = [
            TrafficTier.GB_1000,
            TrafficTier.GB_5000,
            TrafficTier.GB_10000,
            TrafficTier.GB_20000,
            TrafficTier.UNLIMITED,
        ]
        prices = [model.vm_monthly_usd(PortSpeed.MBPS_100, t) for t in tiers]
        assert prices == sorted(prices)

    def test_bare_metal_premium(self):
        model = PricingModel()
        assert model.vm_monthly_usd(bare_metal=True) > model.vm_monthly_usd()

    def test_overlay_cost_scales_with_nodes(self):
        model = PricingModel()
        assert model.overlay_monthly_usd(5) == pytest.approx(5 * model.vm_monthly_usd())
        with pytest.raises(BillingError):
            model.overlay_monthly_usd(0)

    def test_leased_line_grows_with_distance_and_bandwidth(self):
        ny, tokyo, london = (
            city("new_york").point,
            city("tokyo").point,
            city("london").point,
        )
        near = leased_line_monthly_usd(10.0, ny, london)
        far = leased_line_monthly_usd(10.0, ny, tokyo)
        big = leased_line_monthly_usd(100.0, ny, london)
        assert far > near
        assert big > near
        with pytest.raises(BillingError):
            leased_line_monthly_usd(0.0, ny, tokyo)

    def test_leased_line_is_thousands_for_typical_line(self):
        # Sec. I: "each line typically costs thousands of dollars per month".
        price = leased_line_monthly_usd(50.0, city("new_york").point, city("london").point)
        assert price > 2_000.0

    def test_overlay_about_a_tenth(self):
        """The abstract's headline, for a representative scenario."""
        comparison = overlay_vs_leased_line(
            achieved_throughput_mbps=30.0,
            node_count=5,
            endpoint_a=city("new_york").point,
            endpoint_b=city("tokyo").point,
        )
        assert comparison.cost_ratio < 0.2
        assert comparison.overlay_monthly_usd < comparison.leased_line_monthly_usd

    def test_unlimited_tier_gigabytes(self):
        assert TrafficTier.UNLIMITED.gigabytes == float("inf")
        assert TrafficTier.GB_5000.gigabytes == 5_000.0

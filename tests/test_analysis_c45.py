"""The C4.5 decision tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.c45 import C45Tree, _entropy, _pessimistic_error
from repro.errors import AnalysisError


class TestEntropy:
    def test_pure_is_zero(self):
        assert _entropy(0, 10) == 0.0
        assert _entropy(10, 10) == 0.0

    def test_balanced_is_one(self):
        assert _entropy(5, 10) == pytest.approx(1.0)

    def test_pessimistic_error_above_observed(self):
        assert _pessimistic_error(2, 100) > 0.02
        assert _pessimistic_error(0, 0) == 0.0


def threshold_data(threshold=0.3, n=200, seed=0):
    """Linearly separable 1-D data: positive iff x > threshold."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, size=n)
    return [[float(x)] for x in xs], [bool(x > threshold) for x in xs]


class TestFitPredict:
    def test_learns_single_threshold(self):
        features, labels = threshold_data()
        tree = C45Tree(["x"], min_samples_leaf=2).fit(features, labels)
        assert tree.accuracy(features, labels) >= 0.99
        assert tree.predict([0.9]) is True
        assert tree.predict([0.05]) is False

    def test_extracted_threshold_close(self):
        features, labels = threshold_data(threshold=0.3)
        tree = C45Tree(["x"], min_samples_leaf=2).fit(features, labels)
        positive = tree.rules(label=True)
        bounds = [r.lower_bounds().get("x") for r in positive if r.lower_bounds()]
        assert bounds and min(bounds) == pytest.approx(0.3, abs=0.05)

    def test_learns_conjunction(self):
        """The paper's shape: positive iff BOTH reductions are large."""
        rng = np.random.default_rng(3)
        features = [[float(a), float(b)] for a, b in rng.uniform(0, 1, size=(400, 2))]
        labels = [a > 0.105 and b > 0.121 for a, b in features]
        tree = C45Tree(["rtt", "loss"], min_samples_leaf=3).fit(features, labels)
        assert tree.accuracy(features, labels) >= 0.97
        both = [
            r.lower_bounds()
            for r in tree.rules(label=True)
            if set(r.lower_bounds()) == {"rtt", "loss"}
        ]
        assert both, "expected a rule bounding both features"
        assert both[0]["rtt"] == pytest.approx(0.105, abs=0.05)
        assert both[0]["loss"] == pytest.approx(0.121, abs=0.05)

    def test_pruning_collapses_label_noise(self):
        """A noisy threshold function prunes back to the real split."""
        rng = np.random.default_rng(5)
        xs = rng.uniform(0.0, 1.0, 400)
        features = [[float(x)] for x in xs]
        labels = [bool((x > 0.7) != (rng.random() < 0.05)) for x in xs]
        pruned = C45Tree(["x"], min_samples_leaf=5, prune=True).fit(features, labels)
        grown = C45Tree(["x"], min_samples_leaf=5, prune=False).fit(features, labels)
        assert grown.depth() > 2  # noise grew spurious structure...
        assert pruned.depth() <= 2  # ...which pruning removed
        assert len(pruned.rules()) < len(grown.rules())

    def test_depth_limit(self):
        features, labels = threshold_data(n=500)
        tree = C45Tree(["x"], max_depth=1, min_samples_leaf=2).fit(features, labels)
        assert tree.depth() <= 1

    def test_rules_partition_input_space(self):
        features, labels = threshold_data()
        tree = C45Tree(["x"], min_samples_leaf=2).fit(features, labels)
        rules = tree.rules()
        assert sum(r.support for r in rules) == len(labels)
        for rule in rules:
            assert 0.0 < rule.confidence <= 1.0


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(AnalysisError):
            C45Tree([])
        with pytest.raises(AnalysisError):
            C45Tree(["x"], min_samples_leaf=0)
        with pytest.raises(AnalysisError):
            C45Tree(["x"], max_depth=0)

    def test_bad_fit_inputs(self):
        tree = C45Tree(["x"])
        with pytest.raises(AnalysisError):
            tree.fit([], [])
        with pytest.raises(AnalysisError):
            tree.fit([[1.0]], [True, False])
        with pytest.raises(AnalysisError):
            tree.fit([[1.0, 2.0]], [True])

    def test_unfitted_rejected(self):
        tree = C45Tree(["x"])
        with pytest.raises(AnalysisError):
            tree.predict([0.5])
        with pytest.raises(AnalysisError):
            tree.rules()


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1), st.booleans()),
        min_size=12,
        max_size=120,
    )
)
def test_predictions_always_defined(data):
    """Whatever the training set, every point gets a boolean answer."""
    features = [[a, b] for a, b, _l in data]
    labels = [l for _a, _b, l in data]
    tree = C45Tree(["a", "b"], min_samples_leaf=2).fit(features, labels)
    for row in features:
        assert tree.predict(row) in (True, False)
    assert 0.0 <= tree.accuracy(features, labels) <= 1.0

"""The aggregate epoch solver and the relay capacity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand.aggregate import EpochAllocation, FlowClass, Resource, solve_epoch
from repro.demand.relay import RelayCapacity
from repro.errors import ConfigError


def cls(label: str, count: float, per_flow: float, *resources: int) -> FlowClass:
    return FlowClass(
        label=label, count=count, per_flow_mbps=per_flow, resources=tuple(resources)
    )


class TestValidation:
    def test_resource_needs_positive_capacity(self):
        with pytest.raises(ConfigError):
            Resource(label="r", capacity_mbps=0.0)

    def test_class_rejects_negative_count(self):
        with pytest.raises(ConfigError):
            cls("c", -1.0, 1.0)

    def test_solver_rejects_out_of_range_resource_index(self):
        with pytest.raises(ConfigError):
            solve_epoch([cls("c", 1.0, 1.0, 3)], [Resource("r", 10.0)])


class TestSolveEpoch:
    def test_under_capacity_everyone_gets_demand(self):
        allocation = solve_epoch(
            [cls("a", 100.0, 0.05, 0), cls("b", 50.0, 0.02, 0)],
            [Resource("r", 10.0)],
        )
        assert allocation.achieved_mbps(0) == pytest.approx(5.0)
        assert allocation.achieved_mbps(1) == pytest.approx(1.0)
        assert allocation.satisfied_fraction == pytest.approx(1.0)
        assert allocation.loss_fraction(0) == 0.0

    def test_single_bottleneck_scales_proportionally(self):
        allocation = solve_epoch(
            [cls("a", 300.0, 0.1, 0), cls("b", 100.0, 0.1, 0)],
            [Resource("r", 20.0)],
        )
        # 40 Mbps offered into 20: both classes halved.
        assert allocation.achieved_mbps(0) == pytest.approx(15.0, rel=1e-6)
        assert allocation.achieved_mbps(1) == pytest.approx(5.0, rel=1e-6)
        assert allocation.utilization(0) == pytest.approx(2.0)
        assert allocation.loss_fraction(0) == pytest.approx(0.5, rel=1e-6)

    def test_carried_never_exceeds_capacity(self):
        allocation = solve_epoch(
            [cls("a", 1_000.0, 0.5, 0, 1), cls("b", 2_000.0, 0.25, 1)],
            [Resource("r0", 100.0), Resource("r1", 200.0)],
        )
        assert float(allocation.carried_mbps[0]) <= 100.0 + 1e-9
        assert float(allocation.carried_mbps[1]) <= 200.0 + 1e-9

    def test_chained_bottleneck_binds_at_minimum(self):
        allocation = solve_epoch(
            [cls("a", 10.0, 10.0, 0, 1)],
            [Resource("wide", 1_000.0), Resource("narrow", 25.0)],
        )
        assert allocation.achieved_mbps(0) == pytest.approx(25.0, rel=1e-6)
        assert float(allocation.per_flow_mbps[0]) == pytest.approx(2.5, rel=1e-6)

    def test_unconstrained_class_passes_through(self):
        allocation = solve_epoch(
            [cls("free", 1_000_000.0, 0.01)], [Resource("r", 1.0)]
        )
        assert allocation.achieved_mbps(0) == pytest.approx(10_000.0)
        assert allocation.satisfied_fraction == pytest.approx(1.0)

    def test_deterministic(self):
        classes = [cls(f"c{i}", 10.0 * i + 1, 0.3, i % 2) for i in range(10)]
        resources = [Resource("r0", 7.0), Resource("r1", 5.0)]
        a = solve_epoch(classes, resources)
        b = solve_epoch(classes, resources)
        assert np.array_equal(a.per_flow_mbps, b.per_flow_mbps)
        assert np.array_equal(a.carried_mbps, b.carried_mbps)

    def test_millions_of_flows_without_per_flow_objects(self):
        allocation = solve_epoch(
            [cls("mega", 3_000_000.0, 0.02, 0)], [Resource("r", 1_000.0)]
        )
        assert allocation.utilization(0) == pytest.approx(60.0)
        assert allocation.achieved_mbps(0) == pytest.approx(1_000.0, rel=1e-6)

    def test_empty_epoch(self):
        allocation = solve_epoch([], [])
        assert isinstance(allocation, EpochAllocation)
        assert allocation.satisfied_fraction == 1.0


class TestRelayCapacity:
    def test_nic_binds_when_cpu_is_plentiful(self):
        relay = RelayCapacity(label="r", nic_mbps=100.0, cpu_pps=1e9)
        assert relay.capacity_mbps(0.0) == pytest.approx(100.0)

    def test_cpu_binds_at_scale(self):
        relay = RelayCapacity(label="r", nic_mbps=10_000.0, cpu_pps=120_000.0)
        # 120k pps x 1460 B x 8 = ~1.4 Gbps, far below the 10G NIC.
        assert relay.capacity_mbps(0.0) == pytest.approx(1_401.6)

    def test_per_flow_upkeep_erodes_cpu(self):
        relay = RelayCapacity(
            label="r", nic_mbps=10_000.0, cpu_pps=120_000.0, per_flow_pps=0.05
        )
        idle = relay.capacity_mbps(0.0)
        loaded = relay.capacity_mbps(1_000_000.0)
        assert loaded < idle
        assert loaded == pytest.approx((120_000.0 - 50_000.0) * 1460 * 8 / 1e6)

    def test_capacity_floors_at_zero(self):
        relay = RelayCapacity(
            label="r", nic_mbps=10_000.0, cpu_pps=100.0, per_flow_pps=1.0
        )
        assert relay.capacity_mbps(1_000.0) == 0.0

    def test_negative_flows_rejected(self):
        with pytest.raises(ConfigError):
            RelayCapacity(label="r", nic_mbps=100.0).cpu_mbps(-1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            RelayCapacity(label="r", nic_mbps=0.0)
        with pytest.raises(ConfigError):
            RelayCapacity(label="r", nic_mbps=100.0, cpu_pps=0.0)

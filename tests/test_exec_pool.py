"""Pool behaviour: crash isolation, retries, timeouts, resume, abort."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ExecError
from repro.exec.cache import ResultCache
from repro.exec.pool import execute_shards
from repro.exec.runner import ABORT_ENV, ExecConfig, ExecRunner
from repro.exec.spec import TaskSpec


def _triples(n, fn_for):
    """(key, label, fn) triples for n shards of kind 't'."""
    out = []
    for i in range(n):
        spec = TaskSpec("t", 7, i, n)
        out.append((spec.key(), spec.label, fn_for(i)))
    return out


class TestPool:
    def test_payloads_in_task_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _triples(5, lambda i: (lambda: {"shard": i}))
        payloads, outcomes = execute_shards(tasks, cache=cache, workers=3)
        assert [p["shard"] for p in payloads] == [0, 1, 2, 3, 4]
        assert all(o.status == "ok" for o in outcomes)

    def test_dead_worker_fails_its_shard_not_the_run(self, tmp_path):
        cache = ResultCache(tmp_path)

        def fn_for(i):
            if i == 2:
                return lambda: os._exit(3)
            return lambda: i

        payloads, outcomes = execute_shards(
            _triples(5, fn_for), cache=cache, workers=2, retries=0
        )
        assert payloads[2] is None
        assert outcomes[2].status == "error"
        assert "exit code 3" in outcomes[2].error
        assert [payloads[i] for i in (0, 1, 3, 4)] == [0, 1, 3, 4]

    def test_exception_message_crosses_the_pipe(self, tmp_path):
        cache = ResultCache(tmp_path)

        def boom():
            raise ValueError("bad shard input")

        _payloads, outcomes = execute_shards(
            _triples(1, lambda i: boom), cache=cache, retries=0
        )
        assert outcomes[0].status == "error"
        assert "ValueError: bad shard input" in outcomes[0].error
        assert outcomes[0].attempts == 1

    def test_retry_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)

        def boom():
            raise RuntimeError("always fails")

        _payloads, outcomes = execute_shards(
            _triples(1, lambda i: boom), cache=cache, retries=2
        )
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 3

    def test_timeout_kills_hung_shard(self, tmp_path):
        cache = ResultCache(tmp_path)

        def hang():
            time.sleep(60)

        _payloads, outcomes = execute_shards(
            _triples(1, lambda i: hang), cache=cache, timeout_s=0.3, retries=0
        )
        assert outcomes[0].status == "error"
        assert "timed out" in outcomes[0].error

    def test_resume_serves_cache_without_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _triples(4, lambda i: (lambda: i * 10))
        execute_shards(tasks, cache=cache, workers=2)

        def explode():
            raise AssertionError("resume must not recompute")

        resumed, outcomes = execute_shards(
            _triples(4, lambda i: explode), cache=cache, workers=2, resume=True
        )
        assert resumed == [0, 10, 20, 30]
        assert all(o.status == "cached" for o in outcomes)
        assert all(o.attempts == 0 for o in outcomes)

    def test_resume_recomputes_corrupt_entry_instead_of_serving_it(self, tmp_path):
        # Regression: a truncated cache entry used to pass the resume
        # pre-pass (``has()`` saw a file) and either crash the run or
        # serve None as a payload.  It must count as a miss and
        # recompute.
        cache = ResultCache(tmp_path)
        tasks = _triples(3, lambda i: (lambda: i * 10))
        execute_shards(tasks, cache=cache, workers=2)
        path = cache.path_for(tasks[1][0])
        path.write_bytes(path.read_bytes()[:7])  # torn mid-file
        resumed, outcomes = execute_shards(
            tasks, cache=cache, workers=2, resume=True
        )
        assert resumed == [0, 10, 20]
        assert [o.status for o in outcomes] == ["cached", "ok", "cached"]
        assert path.with_suffix(".corrupt").exists()

    def test_without_resume_cache_is_write_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _triples(2, lambda i: (lambda: i))
        execute_shards(tasks, cache=cache)
        _payloads, outcomes = execute_shards(tasks, cache=cache)
        assert all(o.status == "ok" for o in outcomes)

    def test_in_process_fallback_matches_forked_payloads(self, tmp_path):
        forked_cache = ResultCache(tmp_path / "forked")
        inproc_cache = ResultCache(tmp_path / "inproc")
        tasks = _triples(3, lambda i: (lambda: {"rows": [(i, i + 1)]}))
        forked, _ = execute_shards(tasks, cache=forked_cache, workers=2)
        inproc, _ = execute_shards(tasks, cache=inproc_cache, use_processes=False)
        # Both round-trip through JSON, so tuples decay identically.
        assert forked == inproc

    def test_abort_after_raises_with_partial_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _triples(5, lambda i: (lambda: i))
        with pytest.raises(ExecError, match="simulated crash"):
            execute_shards(tasks, cache=cache, workers=1, abort_after=2)
        count, _size = cache.stats()
        assert count >= 2


class TestRunnerConfig:
    def test_invalid_config_rejected(self):
        with pytest.raises(ExecError):
            ExecConfig(workers=0)
        with pytest.raises(ExecError):
            ExecConfig(retries=-1)
        with pytest.raises(ExecError):
            ExecConfig(timeout_s=0.0)

    def test_cache_salt_carries_epoch(self):
        assert ExecConfig().cache_salt.startswith("epoch=")

    def test_abort_env_is_read_at_construction(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ABORT_ENV, "0")
        runner = ExecRunner(ExecConfig(cache_dir=tmp_path))
        from repro.exec.plan import ExecTask

        task = ExecTask(spec=TaskSpec("t", 7, 0, 1), fn=lambda: 1)
        with pytest.raises(ExecError, match="simulated crash"):
            runner.run([task])

    def test_raise_on_errors(self, tmp_path):
        from repro.exec.plan import ExecTask

        def boom():
            raise RuntimeError("nope")

        runner = ExecRunner(ExecConfig(cache_dir=tmp_path, retries=0))
        runner.run([ExecTask(spec=TaskSpec("t", 7, 0, 1), fn=boom)])
        with pytest.raises(ExecError, match="1 shard\\(s\\) failed"):
            runner.raise_on_errors()

    def test_write_manifest_default_path(self, tmp_path):
        from repro.exec.plan import ExecTask

        runner = ExecRunner(ExecConfig(cache_dir=tmp_path))
        runner.run([ExecTask(spec=TaskSpec("t", 7, 0, 1), fn=lambda: 1)])
        path = runner.write_manifest()
        assert path.parent == tmp_path / "runs"
        assert path.exists()

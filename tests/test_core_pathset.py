"""PathSet, four-way measurements, CRONet construction."""

from __future__ import annotations

import pytest

from repro.cloud.provider import CloudProvider
from repro.core import CRONet, PathSet, PathType, measure_four_ways
from repro.errors import ConfigError, MeasurementError
from repro.net import Internet, TopologyConfig, generate_topology
from repro.rand import RandomStreams
from repro.tunnel.node import NodeMode

T0 = 6 * 3_600.0


@pytest.fixture()
def cronet_world():
    streams = RandomStreams(seed=31)
    topo = generate_topology(TopologyConfig.small(), streams)
    provider = CloudProvider.deploy(topo, ("dallas", "amsterdam", "tokyo"), streams)
    internet = Internet(topo, streams)
    from repro.net.asn import ASKind

    stubs = topo.ases_of_kind(ASKind.STUB)
    internet.attach_host("srv", stubs[0].asn, kind="server", rwnd_bytes=4_194_304)
    internet.attach_host("cli", stubs[-1].asn, kind="planetlab")
    cronet = CRONet.build(internet, provider, ["dallas", "amsterdam", "tokyo"])
    return internet, provider, cronet


class TestCRONetBuild:
    def test_one_node_per_dc(self, cronet_world):
        _net, _provider, cronet = cronet_world
        assert len(cronet.nodes) == 3
        cities = {node.host.city_name for node in cronet.nodes}
        assert cities == {"dallas", "amsterdam", "tokyo"}

    def test_monthly_cost_positive(self, cronet_world):
        _net, provider, cronet = cronet_world
        assert cronet.monthly_cost_usd() == pytest.approx(provider.monthly_bill_usd())
        assert cronet.monthly_cost_usd() > 0

    def test_node_lookup_and_subset(self, cronet_world):
        _net, _provider, cronet = cronet_world
        name = cronet.node_names[1]
        assert cronet.node(name).name == name
        subset = cronet.subset([name])
        assert subset.node_names == [name]
        with pytest.raises(ConfigError):
            cronet.node("missing")

    def test_build_validation(self, cronet_world):
        net, provider, _cronet = cronet_world
        with pytest.raises(ConfigError):
            CRONet.build(net, provider, [])
        with pytest.raises(ConfigError):
            CRONet.build(net, provider, ["dallas", "dallas"])


class TestPathSet:
    def test_build_shape(self, cronet_world):
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        assert pathset.direct.src_name == "srv"
        assert len(pathset.options) == 3
        assert len(pathset.all_candidate_paths()) == 4

    def test_tunnels_established_toward_receiver(self, cronet_world):
        _net, _provider, cronet = cronet_world
        cronet.path_set("srv", "cli")
        for node in cronet.nodes:
            assert node.tunnel_for("cli")

    def test_node_cannot_be_endpoint(self, cronet_world):
        net, _provider, cronet = cronet_world
        node_name = cronet.node_names[0]
        with pytest.raises(ConfigError):
            PathSet.build(net, node_name, "cli", cronet.nodes)

    def test_throughput_modes(self, cronet_world):
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        direct = pathset.throughput(PathType.DIRECT, T0)
        assert set(direct) == {"direct"}
        for mode in (PathType.OVERLAY, PathType.SPLIT_OVERLAY, PathType.DISCRETE_OVERLAY):
            per_node = pathset.throughput(mode, T0)
            assert set(per_node) == set(cronet.node_names)
            assert all(v > 0 for v in per_node.values())

    def test_discrete_bounds_split(self, cronet_world):
        """Discrete overlay is the split-overlay's upper bound (Sec. II)."""
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        split = pathset.throughput(PathType.SPLIT_OVERLAY, T0)
        discrete = pathset.throughput(PathType.DISCRETE_OVERLAY, T0)
        for name in split:
            assert split[name] <= discrete[name] + 1e-9

    def test_overlay_mss_reduced_by_tunnel(self, cronet_world):
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        conn = pathset.overlay_connection(pathset.options[0])
        assert conn.params.mss_bytes < 1_460

    def test_best_overlay(self, cronet_world):
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        name, value = pathset.best_overlay(PathType.SPLIT_OVERLAY, T0)
        per_node = pathset.throughput(PathType.SPLIT_OVERLAY, T0)
        assert value == max(per_node.values())
        assert per_node[name] == value
        with pytest.raises(ConfigError):
            pathset.best_overlay(PathType.DIRECT, T0)


class TestFourWay:
    def test_measurement_fields(self, cronet_world):
        _net, _provider, cronet = cronet_world
        pathset = cronet.path_set("srv", "cli")
        m = measure_four_ways(pathset, T0, duration_s=10.0)
        assert m.direct.throughput_mbps > 0
        assert set(m.overlay) == set(cronet.node_names)
        assert set(m.split_overlay) == set(cronet.node_names)
        assert m.best_discrete_mbps() >= m.best_split_mbps() - 1e-9
        assert m.improvement_ratio(m.best_split_mbps()) > 0
        assert m.min_overlay_retransmission_rate() >= 0
        assert m.min_overlay_rtt_ms() > 0

    def test_no_options_rejected(self, cronet_world):
        net, _provider, _cronet = cronet_world
        pathset = PathSet.build(net, "srv", "cli", [])
        with pytest.raises(MeasurementError):
            measure_four_ways(pathset, T0)


class TestNodeModes:
    def test_split_mode_cronet(self, cronet_world):
        net, provider, _cronet = cronet_world
        split_net = CRONet.build(net, provider, ["dallas"], mode=NodeMode.SPLIT)
        assert split_net.nodes[0].mode is NodeMode.SPLIT

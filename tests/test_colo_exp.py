"""E19 — the colo footprint study: no-op guarantee, sharding parity."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.exec.runner import ExecConfig, ExecRunner
from repro.experiments.colo_exp import ColoConfig, run_colo, run_colo_exec
from repro.experiments.scenario import build_world

SEED = 7
#: Tiny-but-complete sizing shared by the parity tests below.
FAST = dict(seed=SEED, scale="small", n_clients=6, n_servers=2, demand_epochs=2)


def _world_fingerprint(world) -> list[tuple]:
    """Every link's static parameters, in id order."""
    return [
        (
            link_id,
            link.prop_delay_ms,
            link.base_loss,
            link.capacity_mbps,
            link.link_class.value,
        )
        for link_id, link in sorted(world.internet.links_by_id.items())
    ]


class TestConfig:
    def test_rejects_unknown_and_duplicate_footprints(self):
        with pytest.raises(ExperimentError):
            ColoConfig(footprints=("edge",))
        with pytest.raises(ExperimentError):
            ColoConfig(footprints=("cloud", "cloud"))
        with pytest.raises(ExperimentError):
            ColoConfig(footprints=())

    def test_colo_footprints_need_facilities(self):
        with pytest.raises(ExperimentError):
            ColoConfig(colo_cities=(), footprints=("cloud", "colo"))
        ColoConfig(colo_cities=(), footprints=("cloud",))  # legal

    def test_rejects_bad_knobs(self):
        with pytest.raises(ExperimentError):
            ColoConfig(demand_level=0.0)
        with pytest.raises(ExperimentError):
            ColoConfig(demand_epochs=0)
        with pytest.raises(ExperimentError):
            ColoConfig(pairs_per_shard=0)


class TestZeroColoIdentity:
    """The substrate is a strict no-op when no facilities are asked for."""

    @pytest.mark.parametrize("seed", [7, 11])
    def test_world_build_unchanged_without_colo(self, seed):
        baseline = build_world(seed=seed, scale="small")
        with_empty = build_world(seed=seed, scale="small", colo_cities=None)
        assert with_empty.colo is None
        assert _world_fingerprint(baseline) == _world_fingerprint(with_empty)

    def test_cloud_only_study_identical_with_and_without_colo_plumbed(self):
        # The property the CI gate enforces: selecting only the cloud
        # footprint with zero colo sites is byte-identical to a world
        # where the colo code path never ran.
        cloud_only = dict(FAST, colo_cities=(), footprints=("cloud",))
        a = run_colo(ColoConfig(**cloud_only))
        b = run_colo(ColoConfig(**cloud_only))
        assert a.render() == b.render()
        assert a.colo_sites == []

    @pytest.mark.parametrize("seed", [7, 11])
    def test_cloud_only_serial_matches_exec_across_seeds(self, seed, tmp_path):
        config = ColoConfig(**dict(FAST, seed=seed, colo_cities=(), footprints=("cloud",)))
        serial = run_colo(config).render()
        for workers in (1, 2):
            runner = ExecRunner(
                ExecConfig(workers=workers, cache_dir=tmp_path / f"s{seed}w{workers}")
            )
            assert run_colo_exec(config, runner).render() == serial


class TestShardingParity:
    def test_mixed_serial_matches_exec_at_any_worker_count(self, tmp_path):
        config = ColoConfig(**FAST, pairs_per_shard=4)
        serial = run_colo(config).render()
        for workers in (1, 2):
            runner = ExecRunner(
                ExecConfig(workers=workers, cache_dir=tmp_path / f"w{workers}")
            )
            assert run_colo_exec(config, runner).render() == serial


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_colo(ColoConfig(**FAST))

    def test_all_three_footprints_reported(self, result):
        assert [r.footprint for r in result.reports] == ["cloud", "colo", "mixed"]
        assert len(result.cloud_sites) == 3
        assert len(result.colo_sites) == 3

    def test_colo_relays_survive_load_better(self, result):
        # The bare-metal pps budget is 5x the VM's; under 10x regional
        # load the colo-backed footprints keep a higher win rate.
        assert result.report("mixed").demand["win_rate"] >= result.report(
            "cloud"
        ).demand["win_rate"]

    def test_mixed_footprint_dominates_on_improvement(self, result):
        # More relay choices can only help the best-split ratio.
        mixed = result.report("mixed").improvement.median_factor_improved
        assert mixed >= result.report("cloud").improvement.median_factor_improved
        assert mixed >= result.report("colo").improvement.median_factor_improved

    def test_cloud_footprint_is_cheapest(self, result):
        assert result.report("cloud").monthly_usd < result.report("colo").monthly_usd
        assert result.report("mixed").monthly_usd == pytest.approx(
            result.report("cloud").monthly_usd + result.report("colo").monthly_usd
        )

    def test_render_carries_the_pipeline(self, result):
        rendered = result.render()
        assert "colo study: 12 pairs" in rendered
        assert "C4.5" in rendered
        assert "diversity: mean" in rendered
        assert "vs leased lines" in rendered
        assert "# series: mixed-split-ratio" in rendered

    def test_unknown_footprint_lookup_raises(self, result):
        with pytest.raises(ExperimentError):
            result.report("edge")


class TestCli:
    def test_colo_verb_smoke(self, capsys):
        from repro.cli import main

        code = main(["colo", "--seed", str(SEED), "--fast", "--footprint", "cloud"])
        out = capsys.readouterr().out
        assert code == 0
        assert "colo study: 12 pairs" in out
        assert "footprint cloud" in out

    def test_colo_verb_exec_parity(self, capsys, tmp_path):
        from repro.cli import main

        outputs = []
        for workers in ("1", "2"):
            code = main(
                [
                    "colo", "--seed", str(SEED), "--fast",
                    "--workers", workers,
                    "--cache-dir", str(tmp_path / f"w{workers}"),
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

"""Packet-level TCP simulator: validation of the faster engines.

The discrete-event engine is the ground truth of this repository: real
segments, real queues, real NewReno recovery.  These tests pin its
agreement with theory (and therefore with the model engine built on
that theory):

* a clean bottleneck is saturated,
* a window-limited flow does rwnd/RTT,
* a lossy path lands in the Mathis ballpark — sometimes below it,
  because NewReno *without SACK* genuinely degrades on multi-loss
  windows (Fall & Floyd 1996), which Mathis's idealized recovery
  ignores,
* split-TCP beats end-to-end TCP on long lossy paths — the paper's
  core mechanism, revalidated packet by packet.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.mathis import mathis_throughput_mbps
from repro.transport.packetsim import PacketLevelTcp, SimLink


def run(links, seed=1, duration=20.0, rwnd=8_388_608):
    tcp = PacketLevelTcp(links, np.random.default_rng(seed), rwnd_bytes=rwnd)
    return tcp.run(duration)


class TestSimLink:
    def test_service_time(self):
        link = SimLink(capacity_mbps=100.0, prop_delay_ms=1.0)
        assert link.service_time_s(1_250) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=0.0, prop_delay_ms=1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=-1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=1.0, loss_prob=1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=1.0, queue_packets=0)


class TestAgainstTheory:
    def test_saturates_clean_bottleneck(self):
        links = [SimLink(100.0, 5.0), SimLink(10.0, 10.0), SimLink(100.0, 5.0)]
        stats = run(links, rwnd=4_194_304)
        assert stats.throughput_mbps == pytest.approx(10.0, rel=0.1)

    def test_rwnd_limit(self):
        # 256 KB window over 200 ms RTT -> ~10.5 Mbps.
        stats = run([SimLink(1_000.0, 100.0)], duration=30.0, rwnd=262_144)
        assert stats.throughput_mbps == pytest.approx(262_144 * 8 / 0.2 / 1e6, rel=0.1)

    def test_mathis_ballpark_on_lossy_path(self):
        links = [SimLink(1_000.0, 20.0, loss_prob=1e-3), SimLink(1_000.0, 20.0)]
        mathis = mathis_throughput_mbps(1_460, 80.0, 1e-3)
        values = [run(links, seed=s, duration=30.0).throughput_mbps for s in (2, 5, 13)]
        mean = statistics.mean(values)
        # Within Mathis's ballpark; the downside slack is NewReno's
        # real multi-loss recovery penalty (no SACK).
        assert 0.3 * mathis <= mean <= 1.3 * mathis

    def test_throughput_decreases_with_loss(self):
        clean = run([SimLink(1_000.0, 40.0)], duration=20.0).throughput_mbps
        lossy = run(
            [SimLink(1_000.0, 40.0, loss_prob=2e-3)], duration=20.0
        ).throughput_mbps
        assert lossy < clean

    def test_throughput_decreases_with_rtt(self):
        short = run([SimLink(1_000.0, 10.0, loss_prob=1e-3)], duration=20.0, seed=5)
        long = run([SimLink(1_000.0, 80.0, loss_prob=1e-3)], duration=20.0, seed=5)
        assert long.throughput_mbps < short.throughput_mbps

    def test_retransmission_rate_tracks_loss(self):
        stats = run(
            [SimLink(1_000.0, 20.0, loss_prob=1e-3), SimLink(1_000.0, 20.0)],
            seed=13,
            duration=30.0,
        )
        # Within an order of magnitude of the injected rate.
        assert 1e-4 <= stats.retransmission_rate <= 1e-1

    def test_rtt_report_includes_queueing(self):
        # Deep queue at a slow bottleneck: measured RTT >> propagation.
        links = [SimLink(10.0, 10.0, queue_packets=256)]
        stats = run(links, rwnd=4_194_304)
        assert stats.avg_rtt_ms > 2 * 10.0


class TestSplitAdvantage:
    def test_split_beats_end_to_end_on_long_lossy_path(self):
        """The paper's Eq. 1 mechanism, revalidated packet by packet."""
        half = lambda: SimLink(1_000.0, 40.0, loss_prob=5e-4)  # noqa: E731
        seeds = (3, 7, 11)
        e2e = statistics.mean(
            run([half(), half()], seed=s, duration=30.0).throughput_mbps for s in seeds
        )
        split = statistics.mean(
            min(
                run([half()], seed=s, duration=30.0).throughput_mbps,
                run([half()], seed=s + 100, duration=30.0).throughput_mbps,
            )
            for s in seeds
        )
        assert split > e2e * 1.3


class TestMechanics:
    def test_deterministic_given_seed(self):
        links = [SimLink(100.0, 10.0, loss_prob=1e-3)]
        a = run(links, seed=4)
        b = run(links, seed=4)
        assert a.throughput_mbps == b.throughput_mbps
        assert a.bytes_retransmitted == b.bytes_retransmitted

    def test_no_loss_means_no_retransmissions(self):
        stats = run([SimLink(100.0, 10.0)], rwnd=262_144)
        assert stats.bytes_retransmitted == 0

    def test_delivery_is_contiguous(self):
        links = [SimLink(100.0, 10.0, loss_prob=5e-3)]
        tcp = PacketLevelTcp(links, np.random.default_rng(6), rwnd_bytes=1_048_576)
        tcp.run(10.0)
        # Everything delivered was delivered in order.
        assert tcp.delivered_segments == tcp.expected_seq
        assert set(range(tcp.expected_seq)) <= tcp.received

    def test_validation(self):
        with pytest.raises(TransportError):
            PacketLevelTcp([], np.random.default_rng(0))
        with pytest.raises(TransportError):
            PacketLevelTcp(
                [SimLink(10.0, 1.0)], np.random.default_rng(0), mss_bytes=0
            )
        tcp = PacketLevelTcp([SimLink(10.0, 1.0)], np.random.default_rng(0))
        with pytest.raises(TransportError):
            tcp.run(0.0)

"""Packet-level TCP simulator: validation of the faster engines.

The discrete-event engine is the ground truth of this repository: real
segments, real queues, real NewReno recovery.  These tests pin its
agreement with theory (and therefore with the model engine built on
that theory):

* a clean bottleneck is saturated,
* a window-limited flow does rwnd/RTT,
* a lossy path lands in the Mathis ballpark — sometimes below it,
  because NewReno *without SACK* genuinely degrades on multi-loss
  windows (Fall & Floyd 1996), which Mathis's idealized recovery
  ignores,
* split-TCP beats end-to-end TCP on long lossy paths — the paper's
  core mechanism, revalidated packet by packet.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.errors import TransportError
from repro.transport.mathis import mathis_throughput_mbps
from repro.transport.packetsim import PacketLevelTcp, SimLink


def run(links, seed=1, duration=20.0, rwnd=8_388_608):
    tcp = PacketLevelTcp(links, np.random.default_rng(seed), rwnd_bytes=rwnd)
    return tcp.run(duration)


class TestSimLink:
    def test_service_time(self):
        link = SimLink(capacity_mbps=100.0, prop_delay_ms=1.0)
        assert link.service_time_s(1_250) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=0.0, prop_delay_ms=1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=-1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=1.0, loss_prob=1.0)
        with pytest.raises(TransportError):
            SimLink(capacity_mbps=10.0, prop_delay_ms=1.0, queue_packets=0)


class TestAgainstTheory:
    def test_saturates_clean_bottleneck(self):
        links = [SimLink(100.0, 5.0), SimLink(10.0, 10.0), SimLink(100.0, 5.0)]
        stats = run(links, rwnd=4_194_304)
        assert stats.throughput_mbps == pytest.approx(10.0, rel=0.1)

    def test_rwnd_limit(self):
        # 256 KB window over 200 ms RTT -> ~10.5 Mbps.
        stats = run([SimLink(1_000.0, 100.0)], duration=30.0, rwnd=262_144)
        assert stats.throughput_mbps == pytest.approx(262_144 * 8 / 0.2 / 1e6, rel=0.1)

    def test_mathis_ballpark_on_lossy_path(self):
        links = [SimLink(1_000.0, 20.0, loss_prob=1e-3), SimLink(1_000.0, 20.0)]
        mathis = mathis_throughput_mbps(1_460, 80.0, 1e-3)
        values = [run(links, seed=s, duration=30.0).throughput_mbps for s in (2, 5, 13)]
        mean = statistics.mean(values)
        # Within Mathis's ballpark; the downside slack is NewReno's
        # real multi-loss recovery penalty (no SACK).
        assert 0.3 * mathis <= mean <= 1.3 * mathis

    def test_throughput_decreases_with_loss(self):
        clean = run([SimLink(1_000.0, 40.0)], duration=20.0).throughput_mbps
        lossy = run(
            [SimLink(1_000.0, 40.0, loss_prob=2e-3)], duration=20.0
        ).throughput_mbps
        assert lossy < clean

    def test_throughput_decreases_with_rtt(self):
        short = run([SimLink(1_000.0, 10.0, loss_prob=1e-3)], duration=20.0, seed=5)
        long = run([SimLink(1_000.0, 80.0, loss_prob=1e-3)], duration=20.0, seed=5)
        assert long.throughput_mbps < short.throughput_mbps

    def test_retransmission_rate_tracks_loss(self):
        stats = run(
            [SimLink(1_000.0, 20.0, loss_prob=1e-3), SimLink(1_000.0, 20.0)],
            seed=13,
            duration=30.0,
        )
        # Within an order of magnitude of the injected rate.
        assert 1e-4 <= stats.retransmission_rate <= 1e-1

    def test_rtt_report_includes_queueing(self):
        # Deep queue at a slow bottleneck: measured RTT >> propagation.
        links = [SimLink(10.0, 10.0, queue_packets=256)]
        stats = run(links, rwnd=4_194_304)
        assert stats.avg_rtt_ms > 2 * 10.0


class TestSplitAdvantage:
    def test_split_beats_end_to_end_on_long_lossy_path(self):
        """The paper's Eq. 1 mechanism, revalidated packet by packet."""
        half = lambda: SimLink(1_000.0, 40.0, loss_prob=5e-4)  # noqa: E731
        seeds = (3, 7, 11)
        e2e = statistics.mean(
            run([half(), half()], seed=s, duration=30.0).throughput_mbps for s in seeds
        )
        split = statistics.mean(
            min(
                run([half()], seed=s, duration=30.0).throughput_mbps,
                run([half()], seed=s + 100, duration=30.0).throughput_mbps,
            )
            for s in seeds
        )
        assert split > e2e * 1.3


class TestMechanics:
    def test_deterministic_given_seed(self):
        links = [SimLink(100.0, 10.0, loss_prob=1e-3)]
        a = run(links, seed=4)
        b = run(links, seed=4)
        assert a.throughput_mbps == b.throughput_mbps
        assert a.bytes_retransmitted == b.bytes_retransmitted

    def test_no_loss_means_no_retransmissions(self):
        stats = run([SimLink(100.0, 10.0)], rwnd=262_144)
        assert stats.bytes_retransmitted == 0

    def test_delivery_is_contiguous(self):
        links = [SimLink(100.0, 10.0, loss_prob=5e-3)]
        tcp = PacketLevelTcp(links, np.random.default_rng(6), rwnd_bytes=1_048_576)
        tcp.run(10.0)
        # Everything delivered was delivered in order.
        assert tcp.delivered_segments == tcp.expected_seq
        assert all(tcp.is_received(seq) for seq in range(tcp.expected_seq))

    def test_validation(self):
        with pytest.raises(TransportError):
            PacketLevelTcp([], np.random.default_rng(0))
        with pytest.raises(TransportError):
            PacketLevelTcp(
                [SimLink(10.0, 1.0)], np.random.default_rng(0), mss_bytes=0
            )
        tcp = PacketLevelTcp([SimLink(10.0, 1.0)], np.random.default_rng(0))
        with pytest.raises(TransportError):
            tcp.run(0.0)


class TestBlockRandom:
    """Bit-identity of the block-buffered RNG planes (DESIGN.md §17)."""

    def test_block_random_matches_scalar_across_boundaries(self):
        from repro.transport.packetsim import _BlockRandom

        block = _BlockRandom(np.random.default_rng(9))
        reference = np.random.default_rng(9)
        # 1,000 draws cross the 256-value block boundary three times.
        assert [block.random() for _ in range(1_000)] == [
            reference.random() for _ in range(1_000)
        ]

    def test_draw_plane_matches_scalar_across_boundaries(self):
        from repro.transport.packetsim import _DrawPlane

        plane = _DrawPlane(np.random.default_rng(11))
        reference = np.random.default_rng(11)
        # 20,000 draws cross the 8,192-value block boundary twice.
        assert [plane.random() for _ in range(20_000)] == [
            reference.random() for _ in range(20_000)
        ]


FASTPATH_CONFIGS = {
    "clean": [SimLink(100.0, 10.0)],
    "lossy": [SimLink(100.0, 10.0, loss_prob=5e-3)],
    "multihop": [SimLink(1_000.0, 3.0)] * 4
    + [SimLink(200.0, 8.0, loss_prob=1e-3)]
    + [SimLink(1_000.0, 5.0)] * 5,
    "shaped": [
        SimLink(20.0, 5.0, shaper_burst_packets=64, line_rate_mbps=1_000.0),
        SimLink(100.0, 20.0, loss_prob=2e-3),
    ],
    "gray": [
        SimLink(100.0, 15.0, loss_prob=1e-3, bulk_loss_prob=8e-3),
        SimLink(500.0, 30.0),
    ],
    "tiny-queue": [
        SimLink(50.0, 2.0, queue_packets=16),
        SimLink(50.0, 40.0, loss_prob=3e-3),
    ],
}


class TestFastpathIdentity:
    """The batched engine is byte-identical to the scalar reference.

    Property-style: every link shape the engine models (clean, lossy,
    multihop, shaped, gray, queue-limited) across several seeds, with
    the full packet trace compared — not just the summary stats.
    """

    @pytest.mark.parametrize("name", sorted(FASTPATH_CONFIGS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trace_and_stats_identical(self, name, seed):
        links = FASTPATH_CONFIGS[name]
        results = {}
        for fastpath in (True, False):
            tcp = PacketLevelTcp(
                links,
                np.random.default_rng(seed),
                rwnd_bytes=1_048_576,
                fastpath=fastpath,
            )
            tcp.trace = []
            stats = tcp.run(5.0)
            results[fastpath] = (
                stats,
                tcp.trace,
                tcp.delivered_segments,
                tcp.retransmissions,
                tuple(tcp.rtt_samples),
            )
        assert results[True] == results[False]

    def test_bounded_flow_identical(self):
        for fastpath in (True, False):
            tcp = PacketLevelTcp(
                FASTPATH_CONFIGS["lossy"],
                np.random.default_rng(5),
                rwnd_bytes=262_144,
                limit_segments=2_000,
                fastpath=fastpath,
            )
            stats = tcp.run(60.0)
            assert tcp.delivered_segments == 2_000
            if fastpath:
                reference = stats
        assert stats == reference

    def test_env_var_opt_out(self, monkeypatch):
        from repro.transport import packetsim

        monkeypatch.setenv("REPRO_PACKET_FASTPATH", "0")
        assert not packetsim.packet_fastpath_enabled()
        tcp = PacketLevelTcp([SimLink(10.0, 1.0)], np.random.default_rng(0))
        assert not tcp._fast
        monkeypatch.delenv("REPRO_PACKET_FASTPATH")
        assert packetsim.packet_fastpath_enabled()


class TestLongTransferBugfixes:
    """The three long-transfer correctness fixes (ISSUE 10 satellites)."""

    def test_bookkeeping_memory_is_o_window(self):
        # A multi-minute flow: ~190k delivered segments through a lossy
        # bottleneck.  Pre-fix, _send_times/_received/_retransmitted
        # grew one entry per segment; post-fix they stay O(window).
        links = [SimLink(25.0, 10.0, loss_prob=1e-3)]
        tcp = PacketLevelTcp(
            links, np.random.default_rng(3), rwnd_bytes=1_048_576, fastpath=False
        )
        tcp.run(150.0)
        assert tcp.delivered_segments > 50_000
        bound = 4 * tcp.rwnd_segments + 4_096  # two-window margin + prune lag
        assert len(tcp._send_times) < bound
        assert len(tcp._received) < bound
        assert len(tcp._retransmitted) < bound
        assert len(tcp._epoch_retx) < bound

    def test_fastpath_rings_wrap_on_long_flows(self):
        # The ring buffers are fixed-size; a flow delivering many times
        # the ring size must wrap them without corrupting delivery.
        links = [SimLink(25.0, 2.0, loss_prob=1e-3)]
        tcp = PacketLevelTcp(
            links, np.random.default_rng(3), rwnd_bytes=65_536, fastpath=True
        )
        tcp.run(60.0)
        ring = len(tcp._rcv_seq)
        assert tcp.delivered_segments > 4 * ring
        assert tcp.delivered_segments == tcp.expected_seq

    def test_shaped_burst_larger_than_queue_overflows(self):
        # Token-rich shaped hop, burst allowance far above the queue:
        # the transmitter drains at the line rate, so an instantaneous
        # window burst deeper than the queue tail-drops the excess.
        # Pre-fix, occupancy was counted at the (50x slower) shaped
        # service rate and the overflow passed silently.
        link = SimLink(
            20.0,
            5.0,
            queue_packets=8,
            shaper_burst_packets=256,
            line_rate_mbps=1_000.0,
        )
        tcp = PacketLevelTcp([link], np.random.default_rng(0), rwnd_bytes=1_048_576)
        tcp.run(2.0)
        assert tcp.retransmissions > 0  # the overflow is visible

    def test_shaped_token_limited_queue_keeps_full_depth(self):
        # Once token-limited, departures space at the shaped service
        # rate, so a full queue really holds queue_packets packets —
        # the sustained flow still saturates the shaped rate.
        link = SimLink(20.0, 5.0, shaper_burst_packets=64, line_rate_mbps=1_000.0)
        stats = run([link], seed=1, duration=30.0, rwnd=1_048_576)
        assert stats.throughput_mbps == pytest.approx(20.0, rel=0.1)

    def test_idle_before_horizon_reports_actual_duration(self):
        # A bounded transfer that finishes long before the horizon:
        # duration_s reflects the time the flow actually used, and the
        # throughput denominator agrees with it.
        links = [SimLink(100.0, 10.0)]
        tcp = PacketLevelTcp(
            links, np.random.default_rng(2), rwnd_bytes=262_144, limit_segments=500
        )
        stats = tcp.run(300.0)
        assert tcp.delivered_segments == 500
        assert stats.duration_s < 2.0  # ~0.6 MB at 100 Mbps: well under 2 s
        assert stats.throughput_mbps == pytest.approx(
            stats.bytes_acked * 8 / stats.duration_s / 1e6
        )

    def test_greedy_flow_still_reports_the_horizon(self):
        stats = run([SimLink(100.0, 10.0)], duration=5.0)
        assert stats.duration_s == 5.0


class TestGrayHopAgreement:
    """Packet engine vs model engine on bulk-only gray loss."""

    def test_mathis_scaling_under_bulk_loss(self):
        # Quadrupling the bulk-only drop probability should halve
        # throughput (Mathis: rate ~ 1/sqrt(p)); the packet engine and
        # the analytic law must agree on both level and scaling.
        rates = {}
        for bulk in (1e-3, 4e-3):
            links = [SimLink(400.0, 40.0, loss_prob=0.0, bulk_loss_prob=bulk)]
            samples = [
                run(links, seed=seed, duration=30.0).throughput_mbps
                for seed in range(3)
            ]
            rates[bulk] = statistics.fmean(samples)
            expected = mathis_throughput_mbps(1_460, 80.0, bulk)
            assert 0.3 * expected < rates[bulk] < 1.3 * expected
        ratio = rates[1e-3] / rates[4e-3]
        assert 1.4 < ratio < 2.8  # ideal sqrt(4) = 2

"""MasqueradeNat edge cases: pool exhaustion and unsolicited inbound."""

from __future__ import annotations

import pytest

from repro.errors import NatError
from repro.tunnel.nat import MasqueradeNat


class TestPortExhaustion:
    def test_pool_exhausts_then_raises(self):
        nat = MasqueradeNat("9.9.9.9", port_range=(40_000, 40_002))
        for i in range(3):
            nat.translate("tcp", "10.0.0.1", 1000 + i)
        assert nat.active_bindings == 3
        with pytest.raises(NatError, match="exhausted"):
            nat.translate("tcp", "10.0.0.1", 2000)

    def test_expiry_frees_a_port_for_reuse(self):
        nat = MasqueradeNat("9.9.9.9", port_range=(40_000, 40_001))
        first = nat.translate("tcp", "10.0.0.1", 1000)
        nat.translate("tcp", "10.0.0.1", 1001)
        nat.expire("tcp", "10.0.0.1", 1000)
        reused = nat.translate("tcp", "10.0.0.2", 3000)
        assert reused.nat_port == first.nat_port
        assert nat.active_bindings == 2

    def test_existing_flow_reuses_binding_at_capacity(self):
        nat = MasqueradeNat("9.9.9.9", port_range=(40_000, 40_000))
        binding = nat.translate("udp", "10.0.0.1", 500)
        # The pool is full, but a known flow never needs a new port.
        assert nat.translate("udp", "10.0.0.1", 500) is binding


class TestUnknownMappings:
    def test_unsolicited_inbound_rejected(self):
        nat = MasqueradeNat("9.9.9.9")
        with pytest.raises(NatError, match="unsolicited"):
            nat.untranslate("tcp", 40_000)

    def test_protocol_mismatch_rejected(self):
        nat = MasqueradeNat("9.9.9.9")
        binding = nat.translate("tcp", "10.0.0.1", 1000)
        with pytest.raises(NatError, match="no udp binding"):
            nat.untranslate("udp", binding.nat_port)

    def test_expired_binding_no_longer_reversible(self):
        nat = MasqueradeNat("9.9.9.9")
        binding = nat.translate("tcp", "10.0.0.1", 1000)
        nat.expire("tcp", "10.0.0.1", 1000)
        with pytest.raises(NatError):
            nat.untranslate("tcp", binding.nat_port)

    def test_expiring_unknown_flow_rejected(self):
        nat = MasqueradeNat("9.9.9.9")
        with pytest.raises(NatError, match="no binding"):
            nat.expire("tcp", "10.0.0.1", 1234)

    def test_invalid_source_port_rejected(self):
        nat = MasqueradeNat("9.9.9.9")
        with pytest.raises(NatError):
            nat.translate("tcp", "10.0.0.1", 0)
        with pytest.raises(NatError):
            nat.translate("tcp", "10.0.0.1", 70_000)

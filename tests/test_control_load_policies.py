"""Load-aware selection: qps-weighted and anycast ingress policies."""

from __future__ import annotations

import math

import pytest

from repro.control.decisions import DecisionRecord
from repro.control.health import HealthConfig, PathHealth, PathState
from repro.control.policy import (
    AnycastIngressPolicy,
    LoadSignal,
    PolicyDecision,
    QpsWeightedPolicy,
)
from repro.control.probes import ProbeResult
from repro.demand.engine import RelayLoadTracker
from repro.errors import ControlError


def probe(
    label: str, mbps: float, rtt: float = 100.0, ingress: float | None = None
) -> ProbeResult:
    return ProbeResult(
        label=label,
        at_time=0.0,
        ok=True,
        rtt_ms=rtt,
        loss=0.0,
        throughput_mbps=mbps,
        bytes_cost=0,
        ingress_rtt_ms=ingress,
    )


def health_for(*labels: str) -> dict[str, PathHealth]:
    return {label: PathHealth(label=label, config=HealthConfig()) for label in labels}


class FixedLoad:
    """A LoadSignal stub returning canned utilizations."""

    def __init__(self, loads: dict[str, float]) -> None:
        self.loads = loads

    def relay_load(self, label: str, now: float) -> float:
        return self.loads.get(label, 0.0)


class TestLoadSignalProtocol:
    def test_tracker_and_stub_satisfy_protocol(self):
        assert isinstance(RelayLoadTracker(), LoadSignal)
        assert isinstance(FixedLoad({}), LoadSignal)


class TestPolicyDecisionWeights:
    def test_weights_must_cover_active_labels_only(self):
        with pytest.raises(ControlError):
            PolicyDecision(
                active=("a",), reason="x", weights=(("b", 1.0),)
            )

    def test_weights_reject_duplicates(self):
        with pytest.raises(ControlError):
            PolicyDecision(
                active=("a", "b"), reason="x", weights=(("a", 0.5), ("a", 0.5))
            )

    def test_weights_reject_negative_and_zero_sum(self):
        with pytest.raises(ControlError):
            PolicyDecision(active=("a",), reason="x", weights=(("a", -1.0),))
        with pytest.raises(ControlError):
            PolicyDecision(active=("a",), reason="x", weights=(("a", 0.0),))


class TestDecisionRecordRendering:
    def test_relay_load_rendered(self):
        record = DecisionRecord(
            at_time=10.0,
            policy="qps-weighted",
            old_active=("a",),
            new_active=("b",),
            reason="test",
            relay_load=(("a", 0.42), ("b", 0.1)),
        )
        assert "[load a=0.42 b=0.10]" in record.render()

    def test_no_load_no_bracket(self):
        record = DecisionRecord(
            at_time=10.0, policy="best-path", old_active=(), new_active=("a",),
            reason="test",
        )
        assert "[load" not in record.render()


class TestQpsWeightedPolicy:
    def test_no_load_signal_ranks_by_score(self):
        policy = QpsWeightedPolicy()
        decision = policy.decide(
            0.0,
            health_for("a", "b"),
            {"a": probe("a", 10.0), "b": probe("b", 30.0)},
            (),
        )
        assert decision.active == ("b", "a")
        weights = dict(decision.weights)
        assert weights["b"] == pytest.approx(0.75)
        assert weights["a"] == pytest.approx(0.25)

    def test_hot_relay_loses_weight(self):
        load = FixedLoad({"fast": 1.0, "slow": 0.0})
        policy = QpsWeightedPolicy(load=load)
        decision = policy.decide(
            0.0,
            health_for("fast", "slow"),
            {"fast": probe("fast", 30.0), "slow": probe("slow", 10.0)},
            (),
        )
        # fast: 30 x 0.05 = 1.5; slow: 10 x 1.05 = 10.5.
        assert decision.active[0] == "slow"
        assert dict(decision.weights)["slow"] > 0.8

    def test_max_relays_caps_the_spread(self):
        policy = QpsWeightedPolicy(max_relays=1)
        decision = policy.decide(
            0.0,
            health_for("a", "b"),
            {"a": probe("a", 10.0), "b": probe("b", 30.0)},
            (),
        )
        assert decision.active == ("b",)
        assert dict(decision.weights)["b"] == pytest.approx(1.0)

    def test_failed_paths_excluded(self):
        health = health_for("a", "b")
        health["b"].state = PathState.FAILED
        decision = QpsWeightedPolicy().decide(
            0.0, health, {"a": probe("a", 10.0), "b": probe("b", 30.0)}, ()
        )
        assert decision.active == ("a",)

    def test_no_usable_relay_returns_empty(self):
        decision = QpsWeightedPolicy().decide(0.0, health_for("a"), {}, ())
        assert decision.active == ()
        assert decision.weights == ()

    def test_relay_load_recorded_for_explainability(self):
        load = FixedLoad({"a": 0.3, "b": 0.6})
        decision = QpsWeightedPolicy(load=load).decide(
            0.0,
            health_for("a", "b"),
            {"a": probe("a", 10.0), "b": probe("b", 10.0)},
            (),
        )
        assert dict(decision.relay_load) == {"a": 0.3, "b": 0.6}

    def test_invalid_params_rejected(self):
        with pytest.raises(ControlError):
            QpsWeightedPolicy(smoothing=0.0)
        with pytest.raises(ControlError):
            QpsWeightedPolicy(max_relays=0)


class TestAnycastIngressPolicy:
    def test_nearest_ingress_wins_when_cool(self):
        decision = AnycastIngressPolicy().decide(
            0.0,
            health_for("near", "far"),
            {
                "near": probe("near", 10.0, ingress=5.0),
                "far": probe("far", 30.0, ingress=50.0),
            },
            (),
        )
        assert decision.active == ("near",)
        assert "nearest ingress near" in decision.reason

    def test_hot_ingress_spills_to_next_nearest(self):
        load = FixedLoad({"near": 0.99, "far": 0.1})
        decision = AnycastIngressPolicy(load=load).decide(
            0.0,
            health_for("near", "far"),
            {
                "near": probe("near", 10.0, ingress=5.0),
                "far": probe("far", 30.0, ingress=50.0),
            },
            (),
        )
        assert decision.active == ("far",)
        assert "spill from near" in decision.reason

    def test_every_ingress_hot_keeps_nearest(self):
        load = FixedLoad({"near": 2.0, "far": 3.0})
        decision = AnycastIngressPolicy(load=load).decide(
            0.0,
            health_for("near", "far"),
            {
                "near": probe("near", 10.0, ingress=5.0),
                "far": probe("far", 30.0, ingress=50.0),
            },
            (),
        )
        assert decision.active == ("near",)

    def test_falls_back_to_path_rtt_without_ingress_probe(self):
        decision = AnycastIngressPolicy().decide(
            0.0,
            health_for("a", "b"),
            {"a": probe("a", 10.0, rtt=200.0), "b": probe("b", 10.0, rtt=50.0)},
            (),
        )
        assert decision.active == ("b",)

    def test_unprobed_paths_unusable(self):
        decision = AnycastIngressPolicy().decide(0.0, health_for("a"), {}, ())
        assert decision.active == ()

    def test_ingress_rtt_must_be_finite(self):
        bad = ProbeResult(
            label="a", at_time=0.0, ok=False, rtt_ms=math.inf, loss=1.0,
            throughput_mbps=None, bytes_cost=0,
        )
        decision = AnycastIngressPolicy().decide(
            0.0, health_for("a"), {"a": bad}, ()
        )
        assert decision.active == ()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ControlError):
            AnycastIngressPolicy(spill_threshold=0.0)

"""MPTCP validation experiment (E10/E11) at miniature scale."""

from __future__ import annotations

import pytest

from repro.experiments.mptcp_exp import (
    MptcpExpConfig,
    REGIONAL_DCS,
    build_mptcp_world,
    run_mptcp_experiment,
)
from repro.transport.mptcp import MptcpScheme

MINI = dict(n_paths=3, iterations=1, duration_s=10.0, tick_s=0.02)


@pytest.fixture(scope="module")
def olia_result():
    return run_mptcp_experiment(MptcpExpConfig(seed=5, **MINI))


class TestWorld:
    def test_nine_servers_three_regions(self):
        internet, servers = build_mptcp_world(seed=5)
        assert len(servers) == 9
        regions = {s.datacenter.city.region for s in servers}
        assert regions == {"na", "eu", "as"}
        assert sum(len(dcs) for dcs in REGIONAL_DCS.values()) == 9
        # Cross-region pairs traverse the public Internet (different ASes).
        a, b = servers[0], servers[-1]
        assert internet.host(a.name).asn != internet.host(b.name).asn


class TestOlia:
    def test_mptcp_tracks_best_overlay(self, olia_result):
        """Fig. 12: MPTCP ≈ max observed overlay throughput."""
        assert olia_result.median_mptcp_vs_best_overlay() > 0.5

    def test_mptcp_not_below_direct(self, olia_result):
        assert olia_result.fraction_mptcp_at_least_direct() >= 0.5

    def test_render(self, olia_result):
        text = olia_result.render()
        assert "Fig. 12" in text
        assert "MPTCP" in text


class TestCubic:
    def test_uncoupled_beats_coupled(self, olia_result):
        """Fig. 13 vs Fig. 12: uncoupled CUBIC aggregates the paths."""
        cubic = run_mptcp_experiment(
            MptcpExpConfig(seed=5, scheme=MptcpScheme.UNCOUPLED_CUBIC, **MINI)
        )
        assert cubic.median_mptcp_mbps() > olia_result.median_mptcp_mbps()
        assert "Fig. 13" in cubic.render()

    def test_cubic_below_nic_limit(self):
        cubic = run_mptcp_experiment(
            MptcpExpConfig(seed=5, scheme=MptcpScheme.UNCOUPLED_CUBIC, **MINI)
        )
        assert cubic.median_mptcp_mbps() <= 100.0

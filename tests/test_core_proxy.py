"""MPTCP proxy pairs (the Sec. VI-A deployment model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.proxy import MptcpProxyPair
from repro.errors import ConfigError
from repro.transport.mptcp import MptcpScheme
from repro.tunnel.node import OverlayNode

T0 = 6 * 3_600.0


@pytest.fixture()
def proxy_pair(small_internet):
    node = OverlayNode(host=small_internet.host("vm"))
    return MptcpProxyPair(
        internet=small_internet,
        site_a="client",
        site_b="server",
        nodes=(node,),
    )


class TestProxyPair:
    def test_subflow_paths_shape(self, proxy_pair):
        paths = proxy_pair.subflow_paths()
        assert len(paths) == proxy_pair.subflow_count == 2
        # First is the direct path; second reflects off the node.
        assert paths[0].dst_name == "server"
        vm_id = proxy_pair.internet.host("vm").host_id
        assert vm_id not in paths[0].router_ids
        assert vm_id in paths[1].router_ids

    def test_transfer_aggregates_subflows(self, proxy_pair):
        stats = proxy_pair.transfer(T0, 10.0, np.random.default_rng(2))
        assert stats.throughput_mbps > 0
        assert len(stats.subflows) == 2

    def test_same_site_rejected(self, small_internet):
        with pytest.raises(ConfigError):
            MptcpProxyPair(
                internet=small_internet, site_a="client", site_b="client", nodes=()
            )

    def test_scheme_selection(self, small_internet):
        node = OverlayNode(host=small_internet.host("vm"))
        pair = MptcpProxyPair(
            internet=small_internet,
            site_a="client",
            site_b="server",
            nodes=(node,),
            scheme=MptcpScheme.UNCOUPLED_CUBIC,
        )
        assert pair.connection().scheme is MptcpScheme.UNCOUPLED_CUBIC

    def test_failover_keeps_connection_alive(self, proxy_pair):
        """Sec. VI-A: 'If the default Internet path fails, the two
        proxies can still continue their connections through the
        overlay paths.'"""
        direct, overlay = proxy_pair.subflow_paths()
        victim = next(
            link
            for link in direct.links
            if all(link is not other for other in overlay.links)
        )

        def fail_early(_sim, elapsed):
            if elapsed >= 2.0 and not victim.failed:
                victim.fail()

        try:
            stats = proxy_pair.transfer(
                T0, 20.0, np.random.default_rng(4), on_tick=fail_early
            )
        finally:
            victim.restore()
        assert stats.subflows[1].throughput_mbps > 0.05

"""Fault-matrix tests for the crash-resilient coordinator backend.

Every scenario asserts the tentpole invariant: merged results are
byte-identical to a sequential ``--workers 1`` run — any worker
count, any kill schedule, any backend.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ExecError
from repro.exec.backend import (
    CoordinatorBackend,
    LocalForkBackend,
    make_backend,
)
from repro.exec.cache import ResultCache
from repro.exec.coordinator import CampaignLedger, Coordinator, WorkerChaos
from repro.exec.plan import ExecTask
from repro.exec.runner import ExecConfig, ExecRunner
from repro.exec.spec import TaskSpec


def make_tasks(n, marker_dir=None, sleeps=None):
    """(key, label, fn) triples with optional side-effect markers.

    Each execution appends a line to ``<marker_dir>/marker-<i>``, so a
    test can count *real* recomputations across worker processes (the
    markers land on the shared filesystem).  Payloads include a
    multi-byte character so byte-identity checks cover encoding too.
    """
    tasks = []
    for i in range(n):
        spec = TaskSpec("coord.test", 7, i, n)

        def fn(i=i):
            if marker_dir is not None:
                with open(marker_dir / f"marker-{i}", "a") as handle:
                    handle.write("x\n")
            if sleeps and i in sleeps:
                time.sleep(sleeps[i])
            return {"shard": i, "rows": [i, i * i], "note": "café"}

        tasks.append((spec.key(), spec.label, fn))
    return tasks


def baseline(tmp_path, tasks):
    """Sequential local-fork run: the byte-identity reference."""
    cache = ResultCache(tmp_path / "baseline-cache")
    payloads, outcomes = LocalForkBackend().execute(
        tasks, cache=cache, workers=1
    )
    assert all(outcome.ok for outcome in outcomes)
    return payloads, cache


def assert_bytes_identical(reference: ResultCache, cache: ResultCache, tasks):
    """Cached files must match the reference byte for byte."""
    for key, _label, _fn in tasks:
        assert cache.path_for(key).read_bytes() == (
            reference.path_for(key).read_bytes()
        )


class TestHappyPath:
    def test_matches_sequential_run(self, tmp_path):
        tasks = make_tasks(5)
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(lease_timeout_s=5.0)
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=3)
        assert payloads == reference
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.worker is not None for outcome in outcomes)
        assert backend.last_stats["executed"] == 5
        assert_bytes_identical(ref_cache, cache, tasks)

    def test_ledger_removed_on_clean_finish(self, tmp_path):
        tasks = make_tasks(3)
        cache = ResultCache(tmp_path / "coord-cache")
        CoordinatorBackend(lease_timeout_s=5.0).execute(
            tasks, cache=cache, workers=2
        )
        ledger = CampaignLedger(cache.root, [key for key, _l, _f in tasks])
        assert not ledger.path.exists()


class TestWorkerSigkillMidShard:
    def test_shard_releases_and_completes(self, tmp_path):
        tasks = make_tasks(4)
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(
            lease_timeout_s=5.0,
            chaos=WorkerChaos(kill=((0, 1),)),  # SIGKILL on attempt 1
        )
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert payloads == reference
        assert all(outcome.ok for outcome in outcomes)
        assert outcomes[0].attempts == 2  # re-leased after the kill
        assert backend.last_stats["worker_deaths"] >= 1
        assert backend.last_stats["respawns"] >= 1
        assert_bytes_identical(ref_cache, cache, tasks)


class TestWorkerHangPastLeaseDeadline:
    def test_lease_expires_and_shard_releases(self, tmp_path):
        tasks = make_tasks(3)
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(
            lease_timeout_s=0.4,
            chaos=WorkerChaos(stall=((0, 1),), stall_s=1.5),
        )
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert payloads == reference
        assert all(outcome.ok for outcome in outcomes)
        assert backend.last_stats["expired_leases"] >= 1
        assert_bytes_identical(ref_cache, cache, tasks)

    def test_stale_ack_from_recovered_worker_is_ignored(self, tmp_path):
        # Shard 0 stalls past its lease (attempt 1 re-leased elsewhere),
        # then the stalled worker wakes, computes, and acks its revoked
        # lease.  A slow co-shard keeps the campaign alive long enough
        # for that stale ack to actually arrive.
        tasks = make_tasks(2, sleeps={1: 2.5})
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(
            lease_timeout_s=0.45,
            chaos=WorkerChaos(stall=((0, 1),), stall_s=1.3),
        )
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert payloads == reference
        assert all(outcome.ok for outcome in outcomes)
        assert backend.last_stats["stale_acks"] >= 1
        assert backend.last_stats["expired_leases"] >= 1
        assert_bytes_identical(ref_cache, cache, tasks)


class TestHeartbeatKeepsSlowShardAlive:
    def test_long_compute_is_not_expired(self, tmp_path):
        # The shard takes 1.0 s against a 0.4 s lease window: only the
        # heartbeat renewals (every ~0.13 s) keep it leased.
        tasks = make_tasks(2, sleeps={0: 1.0})
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(lease_timeout_s=0.4)
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert payloads == reference
        assert outcomes[0].attempts == 1  # never re-leased
        assert backend.last_stats["expired_leases"] == 0
        assert_bytes_identical(ref_cache, cache, tasks)


class TestCoordinatorRestartMidCampaign:
    def test_restart_recovers_losslessly_with_zero_recompute(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        tasks = make_tasks(5, marker_dir=markers)
        reference, ref_cache = baseline(
            tmp_path, make_tasks(5)  # no markers in the reference run
        )
        cache = ResultCache(tmp_path / "coord-cache")
        crashing = Coordinator(
            tasks, cache, workers=1, lease_timeout_s=5.0, abort_after=2
        )
        with pytest.raises(ExecError, match="simulated crash"):
            crashing.run()
        ledger = CampaignLedger(cache.root, [key for key, _l, _f in tasks])
        assert ledger.path.exists()  # exists <=> the campaign crashed
        assert len(ledger.load()) == 2

        restarted = Coordinator(tasks, cache, workers=1, lease_timeout_s=5.0)
        payloads, outcomes = restarted.run()
        assert payloads == reference
        assert restarted.stats["recovered"] == 2
        assert restarted.stats["executed"] == 3
        statuses = [outcome.status for outcome in outcomes]
        assert statuses == ["cached", "cached", "ok", "ok", "ok"]
        # Zero recompute: every shard executed exactly once across both
        # runs (the markers are appended by the worker on real work).
        executions = [
            (markers / f"marker-{i}").read_text().count("x") for i in range(5)
        ]
        assert executions == [1, 1, 1, 1, 1]
        assert not ledger.path.exists()  # clean finish removed it
        assert_bytes_identical(ref_cache, cache, tasks)


class TestPoisonShardQuarantine:
    def test_budget_exhaustion_degrades_gracefully(self, tmp_path):
        tasks = make_tasks(4)
        reference, _ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(
            lease_timeout_s=5.0,
            max_attempts=2,
            chaos=WorkerChaos(kill=((1, None),)),  # kill on *every* attempt
        )
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert not outcomes[1].ok
        assert outcomes[1].attempts == 2
        assert "poison shard quarantined after 2 attempt(s)" in outcomes[1].error
        assert payloads[1] is None
        # The other shards still completed, byte-identical.
        for i in (0, 2, 3):
            assert outcomes[i].ok
            assert payloads[i] == reference[i]
        assert backend.last_stats["quarantined"] == 1


class TestInlineFallback:
    def test_inline_matches_sequential_run(self, tmp_path):
        tasks = make_tasks(4)
        reference, ref_cache = baseline(tmp_path, tasks)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(lease_timeout_s=5.0, use_processes=False)
        payloads, outcomes = backend.execute(tasks, cache=cache, workers=2)
        assert payloads == reference
        assert all(outcome.worker == "inline" for outcome in outcomes)
        assert_bytes_identical(ref_cache, cache, tasks)

    def test_inline_rejects_kill_chaos(self, tmp_path):
        tasks = make_tasks(2)
        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(
            use_processes=False, chaos=WorkerChaos(kill=((0, 1),))
        )
        with pytest.raises(ExecError, match="no fork"):
            backend.execute(tasks, cache=cache, workers=1)

    def test_inline_retries_clean_errors_with_budget(self, tmp_path):
        spec = TaskSpec("coord.flaky", 7, 0, 1)
        calls = tmp_path / "calls"

        def flaky():
            count = calls.read_text().count("x") if calls.exists() else 0
            with open(calls, "a") as handle:
                handle.write("x\n")
            if count == 0:
                raise ValueError("first attempt fails")
            return {"ok": True}

        cache = ResultCache(tmp_path / "coord-cache")
        backend = CoordinatorBackend(use_processes=False, max_attempts=3)
        payloads, outcomes = backend.execute(
            [(spec.key(), spec.label, flaky)], cache=cache, workers=1
        )
        assert payloads == [{"ok": True}]
        assert outcomes[0].attempts == 2


class TestWorkerChaosParsing:
    def test_full_mini_language(self):
        chaos = WorkerChaos.parse("kill=0@1,stall=3@*,kill=2,stall-s=2.5")
        assert chaos.kill == ((0, 1), (2, 1))  # @ omitted -> attempt 1
        assert chaos.stall == ((3, None),)  # @* -> every attempt
        assert chaos.stall_s == 2.5
        assert chaos.kills_anything

    def test_empty_entries_ignored(self):
        chaos = WorkerChaos.parse(" kill=1@2 , ")
        assert chaos.kill == ((1, 2),)
        assert not WorkerChaos.parse("stall=0").kills_anything

    def test_malformed_entries_raise(self):
        for text in ("kaboom", "boom=1", "kill=x", "kill=1@y"):
            with pytest.raises(ExecError):
                WorkerChaos.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_CHAOS", raising=False)
        assert WorkerChaos.from_env() is None
        monkeypatch.setenv("REPRO_EXEC_CHAOS", "kill=0@1")
        assert WorkerChaos.from_env().kill == ((0, 1),)


class TestCampaignLedger:
    def test_mark_done_load_clear_round_trip(self, tmp_path):
        keys = ["a" * 64, "b" * 64]
        ledger = CampaignLedger(tmp_path, keys)
        assert ledger.load() == set()
        ledger.mark_done(keys[0])
        assert CampaignLedger(tmp_path, keys).load() == {keys[0]}
        ledger.clear()
        assert not ledger.path.exists()
        ledger.clear()  # idempotent

    def test_corrupt_ledger_reads_as_empty(self, tmp_path):
        keys = ["a" * 64]
        ledger = CampaignLedger(tmp_path, keys)
        ledger.mark_done(keys[0])
        ledger.path.write_text("{torn")
        assert CampaignLedger(tmp_path, keys).load() == set()

    def test_campaign_id_depends_on_key_set(self, tmp_path):
        a = CampaignLedger(tmp_path, ["a" * 64])
        b = CampaignLedger(tmp_path, ["b" * 64])
        assert a.campaign_id != b.campaign_id


class TestRunnerIntegration:
    def test_runner_with_coordinator_backend(self, tmp_path):
        specs = [TaskSpec("coord.runner", 7, i, 3) for i in range(3)]
        tasks = [
            ExecTask(spec=spec, fn=lambda i=i: {"i": i})
            for i, spec in enumerate(specs)
        ]
        runner = ExecRunner(ExecConfig(
            workers=2, cache_dir=tmp_path, backend="coordinator",
            lease_timeout_s=5.0,
        ))
        payloads = runner.run(tasks)
        assert payloads == [{"i": 0}, {"i": 1}, {"i": 2}]
        manifest = runner.manifest
        assert manifest.backend == "coordinator"
        assert manifest.executed == 3
        body = json.loads(manifest.write(tmp_path / "m.json").read_text())
        assert body["backend"] == "coordinator"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ExecError, match="unknown backend"):
            ExecConfig(cache_dir=tmp_path, backend="carrier-pigeon")
        with pytest.raises(ExecError, match="unknown exec backend"):
            make_backend("carrier-pigeon")

    def test_coordinator_knob_validation(self, tmp_path):
        with pytest.raises(ExecError):
            ExecConfig(cache_dir=tmp_path, lease_timeout_s=0)
        with pytest.raises(ExecError):
            ExecConfig(cache_dir=tmp_path, max_attempts=0)
        with pytest.raises(ExecError):
            ExecConfig(cache_dir=tmp_path, heartbeat_s=-1)

"""Seeded random streams: reproducibility and independence."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.rand import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(seed=7).stream("topology").random(5)
        b = RandomStreams(seed=7).stream("topology").random(5)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=7).stream("topology").random(5)
        b = RandomStreams(seed=8).stream("topology").random(5)
        assert list(a) != list(b)

    def test_streams_are_independent(self):
        """Draws on one stream must not perturb another."""
        family1 = RandomStreams(seed=7)
        family1.stream("congestion").random(100)  # interleaved noise
        after_noise = family1.stream("topology").random(5)

        family2 = RandomStreams(seed=7)
        clean = family2.stream("topology").random(5)
        assert list(after_noise) == list(clean)

    def test_stream_is_cached(self):
        family = RandomStreams(seed=7)
        assert family.stream("x") is family.stream("x")

    def test_fork_derives_new_family(self):
        family = RandomStreams(seed=7)
        child = family.fork("trial-3")
        assert child.seed != family.seed
        # forks are reproducible
        again = RandomStreams(seed=7).fork("trial-3")
        assert child.seed == again.seed

    def test_spawn_generator_replayable(self):
        family = RandomStreams(seed=7)
        a = family.spawn_generator("link", 42).random(3)
        b = family.spawn_generator("link", 42).random(3)
        assert list(a) == list(b)

    def test_spawn_generator_varies_by_index(self):
        family = RandomStreams(seed=7)
        a = family.spawn_generator("link", 1).random(3)
        b = family.spawn_generator("link", 2).random(3)
        assert list(a) != list(b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigError):
            RandomStreams(seed="42")  # type: ignore[arg-type]

"""BGP convergence around failures (resolve_live_path)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError


class TestLivePathResolution:
    def test_returns_preferred_when_alive(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        live = small_internet.resolve_live_path("client", "server")
        assert live is preferred

    def test_reroutes_around_failed_link(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        # Fail a link in the middle (not the shared access links).
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        try:
            live = small_internet.resolve_live_path("client", "server")
            assert live.is_alive()
            assert all(link is not victim for link in live.links)
            # Endpoints unchanged.
            assert live.router_ids[0] == preferred.router_ids[0]
            assert live.router_ids[-1] == preferred.router_ids[-1]
        finally:
            victim.restore()

    def test_rerouted_path_may_cost_more(self, small_internet):
        """The fallback is policy-compliant but typically less preferred."""
        preferred = small_internet.resolve_path("client", "server")
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        try:
            live = small_internet.resolve_live_path("client", "server")
            # Same or more AS-level hops than the preferred route.
            assert live.hop_count >= 2
        finally:
            victim.restore()

    def test_access_link_failure_is_fatal(self, small_internet):
        """No alternative exists when the last mile itself is down."""
        client = small_internet.host("client")
        client.access_link.fail()
        try:
            with pytest.raises(RoutingError):
                small_internet.resolve_live_path("client", "server")
        finally:
            client.access_link.restore()

    def test_restoration_reverts_to_preferred(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        small_internet.resolve_live_path("client", "server")
        victim.restore()
        assert small_internet.resolve_live_path("client", "server") is preferred

"""BGP convergence around failures (resolve_live_path)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.faults.events import PopOutage, Window
from repro.net import Internet, Relationship, Topology
from repro.net.asn import ASKind, AutonomousSystem
from repro.net.reroute import dark_routers, live_internal_route
from repro.net.world import HOST_ID_BASE
from repro.rand import RandomStreams


def build_sibling_pop_internet() -> Internet:
    """Two stubs joined by one transit with two PoPs (chicago, new_york).

    Both stubs interconnect with *both* transit PoPs, so when one PoP
    dies the only AS path can still be realised through the sibling —
    the partial-outage convergence the tentpole models.
    """
    topo = Topology()

    def add(asn, name, kind, cities):
        return topo.add_as(
            AutonomousSystem(asn=asn, name=name, kind=kind, pop_cities=cities)
        )

    add(10, "transit", ASKind.TRANSIT, ("chicago", "new_york"))
    add(1, "src-stub", ASKind.STUB, ("dallas",))
    add(2, "dst-stub", ASKind.STUB, ("london",))
    topo.add_relation(
        1, 10, Relationship.CUSTOMER,
        interconnect_cities=(("dallas", "chicago"), ("dallas", "new_york")),
    )
    topo.add_relation(
        2, 10, Relationship.CUSTOMER,
        interconnect_cities=(("london", "chicago"), ("london", "new_york")),
    )
    net = Internet(topo, RandomStreams(seed=9))
    net.attach_host("src", 1)
    net.attach_host("dst", 2)
    return net


class TestLivePathResolution:
    def test_returns_preferred_when_alive(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        live = small_internet.resolve_live_path("client", "server")
        assert live is preferred

    def test_reroutes_around_failed_link(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        # Fail a link in the middle (not the shared access links).
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        try:
            live = small_internet.resolve_live_path("client", "server")
            assert live.is_alive()
            assert all(link is not victim for link in live.links)
            # Endpoints unchanged.
            assert live.router_ids[0] == preferred.router_ids[0]
            assert live.router_ids[-1] == preferred.router_ids[-1]
        finally:
            victim.restore()

    def test_rerouted_path_may_cost_more(self, small_internet):
        """The fallback is policy-compliant but typically less preferred."""
        preferred = small_internet.resolve_path("client", "server")
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        try:
            live = small_internet.resolve_live_path("client", "server")
            # Same or more AS-level hops than the preferred route.
            assert live.hop_count >= 2
        finally:
            victim.restore()

    def test_access_link_failure_is_fatal(self, small_internet):
        """No alternative exists when the last mile itself is down."""
        client = small_internet.host("client")
        client.access_link.fail()
        try:
            with pytest.raises(RoutingError):
                small_internet.resolve_live_path("client", "server")
        finally:
            client.access_link.restore()

    def test_restoration_reverts_to_preferred(self, small_internet):
        preferred = small_internet.resolve_path("client", "server")
        victim = preferred.links[len(preferred.links) // 2]
        victim.fail()
        small_internet.resolve_live_path("client", "server")
        victim.restore()
        assert small_internet.resolve_live_path("client", "server") is preferred


class TestDecisionKey:
    """One shared ordering for pre-failure selection and fallback."""

    @pytest.mark.parametrize(
        "pair", [("client", "server"), ("client", "vm"), ("vm", "server")]
    )
    def test_selection_is_first_in_fallback_order(self, small_internet, pair):
        # The fallback loop in resolve_live_path sorts all candidate
        # routes by _decision_key; its first entry must be exactly what
        # _select_as_path picks, hot-potato tie-break included —
        # otherwise an undamaged prefix could "fail over" to a
        # different route than the one it prefers.
        src = small_internet.host(pair[0])
        dst = small_internet.host(pair[1])
        candidates = small_internet.bgp.candidate_routes(src.asn, dst.asn)
        first = min(
            candidates, key=lambda r: small_internet._decision_key(src, dst, r)
        )
        assert first.path == small_internet._select_as_path(src, dst)

    def test_fallback_for_undamaged_prefix_is_preferred_route(self, small_internet):
        # Damaging an unrelated host's path must not change what the
        # fallback machinery resolves for a healthy pair.
        preferred = small_internet.resolve_path("client", "server")
        unrelated = small_internet.resolve_path("client", "vm")
        victim = next(
            link for link in unrelated.links
            if link not in preferred.links
        )
        victim.fail()
        try:
            assert small_internet.resolve_live_path("client", "server") is preferred
        finally:
            victim.restore()


class TestDarkRouters:
    def test_no_failures_no_dark_routers(self, small_internet):
        assert dark_routers(small_internet) == frozenset()

    def test_pop_outage_darkens_exactly_its_router(self, small_internet):
        asn, city = next(
            (asys.asn, asys.pop_cities[0])
            for asys in small_internet.topology.ases.values()
            if len(asys.pop_cities) >= 2
        )
        router = small_internet.routers.at(asn, city)
        outage = PopOutage.for_pop(small_internet, asn, city, Window(0.0, 10.0))
        links = [small_internet.links_by_id[lid] for lid in outage.link_ids]
        for link in links:
            link.fail()
        try:
            assert router.router_id in dark_routers(small_internet)
        finally:
            for link in links:
                link.restore()
        assert router.router_id not in dark_routers(small_internet)

    def test_partially_failed_router_not_dark(self, small_internet):
        link = next(iter(small_internet.links_by_id.values()))
        link.fail()
        try:
            dark = dark_routers(small_internet)
            # Both endpoints still have other live links in small_internet.
            assert link.router_a not in dark
            assert link.router_b not in dark
        finally:
            link.restore()


class TestLiveInternalRoute:
    def multi_pop_asn(self, small_internet):
        return next(
            asys.asn
            for asys in small_internet.topology.ases.values()
            if len(asys.pop_cities) >= 3
        )

    def test_matches_static_route_when_clean(self, small_internet):
        asn = self.multi_pop_asn(small_internet)
        pops = small_internet.routers.of_as(asn)
        a, b = pops[0].router_id, pops[-1].router_id
        static = small_internet._internal_route(asn, a, b)
        live = live_internal_route(small_internet, asn, a, b)
        assert sum(l.prop_delay_ms for l in live[1]) == pytest.approx(
            sum(l.prop_delay_ms for l in static[1])
        )

    def test_detours_around_failed_backbone_link(self, small_internet):
        asn = self.multi_pop_asn(small_internet)
        pops = small_internet.routers.of_as(asn)
        a, b = pops[0].router_id, pops[-1].router_id
        static = small_internet._internal_route(asn, a, b)
        victim = static[1][0]
        victim.fail()
        try:
            routers, links = live_internal_route(small_internet, asn, a, b)
            assert victim not in links
            assert routers[-1] == b
            assert not any(link.failed for link in links)
        finally:
            victim.restore()

    def test_disconnection_raises(self, small_internet):
        asn = self.multi_pop_asn(small_internet)
        pops = small_internet.routers.of_as(asn)
        a, b = pops[0].router_id, pops[-1].router_id
        cut = [
            link
            for (x, _y), link in small_internet._internal.items()
            if x == b
        ]
        for link in cut:
            link.fail()
        try:
            with pytest.raises(RoutingError):
                live_internal_route(small_internet, asn, a, b)
        finally:
            for link in cut:
                link.restore()


class TestSiblingPopConvergence:
    """A transit AS survives losing one PoP: traffic exits a sibling."""

    def test_reroute_stays_in_the_as_via_sibling_pop(self):
        net = build_sibling_pop_internet()
        preferred = net.resolve_path("src", "dst")
        transit_pops = [
            net.routers.get(rid)
            for rid in preferred.router_ids
            if rid < HOST_ID_BASE and net.routers.get(rid).asn == 10
        ]
        assert transit_pops, "preferred path must cross the transit"
        dead_city = transit_pops[0].city_name
        outage = PopOutage.for_pop(net, 10, dead_city, Window(0.0, 100.0))
        links = [net.links_by_id[lid] for lid in outage.link_ids]
        for link in links:
            link.fail()
        try:
            assert not preferred.is_alive()
            live = net.resolve_live_path("src", "dst")
            assert live.is_alive()
            assert not any(link.failed for link in live.links)
            survivors = [
                net.routers.get(rid)
                for rid in live.router_ids
                if rid < HOST_ID_BASE and net.routers.get(rid).asn == 10
            ]
            # Still carried by AS10 — through the surviving sibling PoP.
            assert survivors
            assert all(r.city_name != dead_city for r in survivors)
        finally:
            for link in links:
                link.restore()

    def test_losing_both_pops_is_fatal(self):
        net = build_sibling_pop_internet()
        link_ids = {
            lid
            for city in ("chicago", "new_york")
            for lid in PopOutage.for_pop(net, 10, city, Window(0.0, 1.0)).link_ids
        }
        for lid in link_ids:
            net.links_by_id[lid].fail()
        with pytest.raises(RoutingError):
            net.resolve_live_path("src", "dst")

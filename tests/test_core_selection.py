"""Path selection (probing baseline vs MPTCP) and placement analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import (
    best_subset_average_max,
    improvement_vs_node_count,
    min_nodes_for_max_throughput,
)
from repro.core.selection import MptcpSelector, ProbingSelector
from repro.errors import AnalysisError, ConfigError
from repro.core.pathset import PathType

T0 = 6 * 3_600.0


@pytest.fixture()
def pathset(small_internet):
    from repro.core.pathset import PathSet
    from repro.tunnel.node import OverlayNode

    node = OverlayNode(host=small_internet.host("vm"))
    return PathSet.build(small_internet, "server", "client", [node])


class TestProbingSelector:
    def test_probe_picks_best(self, pathset):
        selector = ProbingSelector(pathset)
        result = selector.probe(T0)
        candidates = {"direct": pathset.direct_connection().throughput_at(T0)}
        candidates.update(pathset.throughput(PathType.SPLIT_OVERLAY, T0))
        assert result.chosen == max(sorted(candidates), key=lambda k: candidates[k])
        assert result.probe_overhead_bytes > 0
        assert result.stale_s == 0.0

    def test_select_goes_stale_without_probe(self, pathset):
        selector = ProbingSelector(pathset)
        selector.probe(T0)
        later = selector.select(T0 + 7_200.0)
        assert later.stale_s == pytest.approx(7_200.0)
        assert later.probe_overhead_bytes == 0

    def test_first_select_probes(self, pathset):
        selector = ProbingSelector(pathset)
        result = selector.select(T0)
        assert result.stale_s == 0.0
        assert selector.total_overhead_bytes > 0

    def test_direct_mode_rejected(self, pathset):
        with pytest.raises(ConfigError):
            ProbingSelector(pathset, mode=PathType.DIRECT)


class TestMptcpSelector:
    def test_zero_overhead_selection(self, pathset):
        selector = MptcpSelector(pathset)
        result = selector.select(T0, 10.0, np.random.default_rng(3))
        assert result.probe_overhead_bytes == 0
        assert result.stale_s == 0.0
        assert result.chosen in ["direct"] + [o.name for o in pathset.options]
        assert result.throughput_mbps > 0

    def test_subflow_count(self, pathset):
        selector = MptcpSelector(pathset)
        assert len(selector.connection.paths) == len(pathset.options) + 1


class TestPlacement:
    def test_min_nodes_single_best(self):
        samples = {"a": [10, 10, 10], "b": [5, 5, 5]}
        assert min_nodes_for_max_throughput(samples) == 1

    def test_min_nodes_alternating(self):
        # a is best at t0/t2, b at t1: both are needed.
        samples = {"a": [10, 1, 10], "b": [5, 9, 5], "c": [1, 1, 1]}
        assert min_nodes_for_max_throughput(samples) == 2

    def test_min_nodes_all_needed(self):
        samples = {"a": [9, 1, 1], "b": [1, 9, 1], "c": [1, 1, 9]}
        assert min_nodes_for_max_throughput(samples) == 3

    def test_validation(self):
        with pytest.raises(AnalysisError):
            min_nodes_for_max_throughput({})
        with pytest.raises(AnalysisError):
            min_nodes_for_max_throughput({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(AnalysisError):
            min_nodes_for_max_throughput({"a": []})

    def test_best_subset(self):
        samples = {"a": [10, 0], "b": [0, 10], "c": [6, 6]}
        subset, avg = best_subset_average_max(samples, 1)
        assert subset == ("c",)
        assert avg == pytest.approx(6.0)
        subset2, avg2 = best_subset_average_max(samples, 2)
        assert subset2 == ("a", "b")
        assert avg2 == pytest.approx(10.0)
        with pytest.raises(AnalysisError):
            best_subset_average_max(samples, 4)

    def test_table1_flattens(self):
        """More nodes never hurt; gains taper (Table I's shape)."""
        per_path = [
            {"a": [10, 2], "b": [2, 9], "c": [5, 5], "d": [1, 1]},
            {"a": [8, 8], "b": [3, 3], "c": [2, 2], "d": [7, 9]},
        ]
        directs = [2.0, 4.0]
        rows = improvement_vs_node_count(per_path, directs)
        assert [k for k, _m, _md in rows] == [1, 2, 3, 4]
        means = [m for _k, m, _md in rows]
        assert means == sorted(means)  # monotone non-decreasing

    def test_table1_validation(self):
        with pytest.raises(AnalysisError):
            improvement_vs_node_count([], [])
        with pytest.raises(AnalysisError):
            improvement_vs_node_count([{"a": [1.0]}], [0.0])
        with pytest.raises(AnalysisError):
            improvement_vs_node_count([{"a": [1.0]}], [1.0, 2.0])

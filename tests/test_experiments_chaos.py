"""The chaos study: determinism and the hardening payoff."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.chaos_exp import (
    ChaosConfig,
    PacketReplayConfig,
    run_chaos,
    run_chaos_packet,
)


@pytest.fixture(scope="module")
def showcase():
    """One study over the two degradation showcases (module-scoped: slow)."""
    return run_chaos(
        ChaosConfig(scenarios=("probe-blackout", "flapping-overlay"))
    )


class TestDeterminism:
    def test_two_runs_identical(self):
        config = ChaosConfig(
            scenarios=("probe-loss",), duration_s=900.0, tick_s=15.0,
            probe_interval_s=30.0,
        )
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.outcomes == second.outcomes
        assert first.render() == second.render()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            ChaosConfig(scenarios=("nope",))


class TestHardeningPayoff:
    def test_blackout_fallback_strictly_reduces_downtime(self, showcase):
        # The PR-1 controller keeps trusting its last rosy probe and sits
        # on the dead overlay through the blackout; the degradation-aware
        # one notices its data rotted and falls back to the gray-but-alive
        # direct path.
        baseline = showcase.outcome("probe-blackout", "controller-best", "baseline")
        hardened = showcase.outcome("probe-blackout", "controller-best", "hardened")
        assert baseline.downtime_s > 0.0
        assert hardened.downtime_s < baseline.downtime_s
        assert hardened.wrong_path_s < baseline.downtime_s + baseline.wrong_path_s

    def test_quarantine_reduces_churn_on_flapping_overlay(self, showcase):
        baseline = showcase.outcome("flapping-overlay", "mptcp-subflows", "baseline")
        hardened = showcase.outcome("flapping-overlay", "mptcp-subflows", "hardened")
        assert hardened.quarantines >= 1
        assert hardened.churn < baseline.churn

    def test_baseline_arm_never_quarantines(self, showcase):
        assert all(
            outcome.quarantines == 0
            for outcome in showcase.outcomes
            if outcome.arm == "baseline"
        )

    def test_static_direct_identical_across_arms(self, showcase):
        # No scheduler, no degradation: hardening must not touch it.
        for scenario in showcase.config.scenario_names:
            baseline = showcase.outcome(scenario, "static-direct", "baseline")
            hardened = showcase.outcome(scenario, "static-direct", "hardened")
            assert baseline.downtime_s == hardened.downtime_s
            assert baseline.mean_goodput_mbps == hardened.mean_goodput_mbps


class TestReporting:
    def test_render_covers_every_scenario_and_arm(self, showcase):
        rendered = showcase.render()
        for scenario in showcase.config.scenario_names:
            assert scenario in rendered
        assert "baseline" in rendered
        assert "hardened" in rendered
        assert "wrong-path" in rendered

    def test_outcome_lookup_rejects_unknown(self, showcase):
        with pytest.raises(ExperimentError):
            showcase.outcome("probe-blackout", "controller-best", "nope")


class TestPopOutage:
    @pytest.fixture(scope="class")
    def pop_outage(self):
        """The partial-AS-outage showcase in fast mode (class-scoped: slow)."""
        return run_chaos(
            ChaosConfig(
                scenarios=("pop-outage",), duration_s=900.0, tick_s=5.0,
                probe_interval_s=15.0,
            )
        )

    def test_stale_filter_beats_trusting_lost_probes(self, pop_outage):
        # The dead PoP swallows the best overlay's probes, so the
        # baseline keeps serving the last rosy result and rides the
        # corpse through every episode; the hardened arm's per-path
        # staleness filter drops the label and switches within one
        # staleness bound.
        baseline = pop_outage.outcome("pop-outage", "controller-best", "baseline")
        hardened = pop_outage.outcome("pop-outage", "controller-best", "hardened")
        assert baseline.wrong_path_s > 0.0
        assert hardened.wrong_path_s < baseline.wrong_path_s
        assert hardened.downtime_s < baseline.downtime_s

    def test_baseline_rides_the_dead_pop_all_episodes(self, pop_outage):
        # Four 90 s episodes: LOST probes never update last_result, so
        # the baseline's downtime covers essentially the whole outage.
        baseline = pop_outage.outcome("pop-outage", "controller-best", "baseline")
        assert baseline.downtime_s >= 300.0

    def test_partial_outage_is_not_a_blackout(self, pop_outage):
        # Only one PoP dies: every other path keeps answering probes,
        # so the hardened arm sees per-path staleness, never a
        # blackout — no FAILED health transitions (hence zero
        # quarantines) and goodput keeps flowing between failovers.
        hardened = pop_outage.outcome("pop-outage", "controller-best", "hardened")
        assert hardened.quarantines == 0
        assert hardened.probes_lost > 0
        assert hardened.mean_goodput_mbps > 0.0


class TestAdaptiveArm:
    @pytest.fixture(scope="class")
    def gray_detect(self):
        """The gray-failure showcase with the adaptive arm enabled."""
        return run_chaos(
            ChaosConfig(
                scenarios=("gray-detect",), adaptive=True, duration_s=900.0,
                tick_s=5.0, probe_interval_s=15.0,
            )
        )

    def test_adaptive_off_by_default(self):
        config = ChaosConfig(scenarios=("probe-loss",))
        assert config.arms == ("baseline", "hardened")
        assert "gray-detect" not in config.scenario_names

    def test_adaptive_adds_third_arm(self, gray_detect):
        assert gray_detect.config.arms == ("baseline", "hardened", "adaptive")
        arms = {outcome.arm for outcome in gray_detect.outcomes}
        assert arms == {"baseline", "hardened", "adaptive"}

    def test_adaptive_strictly_reduces_wrong_path_time(self, gray_detect):
        # The whole point of the PR: with bulk-only gray episodes on the
        # preferred overlay, the ping-only arms keep riding the silently
        # broken path while the throughput/ping cross-check bails out.
        baseline = gray_detect.outcome("gray-detect", "controller-best", "baseline")
        adaptive = gray_detect.outcome("gray-detect", "controller-best", "adaptive")
        assert baseline.wrong_path_s > 0.0
        assert adaptive.wrong_path_s < baseline.wrong_path_s

    def test_detection_latency_reported_for_adaptive_run(self, gray_detect):
        adaptive = gray_detect.outcome("gray-detect", "controller-best", "adaptive")
        assert adaptive.detect_s is not None
        assert 0.0 < adaptive.detect_s < 900.0

    def test_detect_column_only_when_adaptive(self, gray_detect):
        assert "detect" in gray_detect.render()
        classic = run_chaos(
            ChaosConfig(
                scenarios=("probe-loss",), duration_s=900.0, tick_s=15.0,
                probe_interval_s=30.0,
            )
        )
        assert "detect" not in classic.render()

    def test_probe_bounds_validated(self):
        with pytest.raises(ExperimentError):
            ChaosConfig(scenarios=("gray-detect",), probe_floor_s=0.0)
        with pytest.raises(ExperimentError):
            ChaosConfig(scenarios=("gray-detect",), probe_ceiling_s=-1.0)


class TestAdaptiveAblationKnobs:
    def test_bundle_turns_on_every_knob(self):
        config = ChaosConfig(adaptive=True)
        assert config.use_adaptive_cadence
        assert config.use_gray_detect
        assert config.use_flap_margin
        assert config.any_adaptive

    def test_single_knob_adds_adaptive_arm(self):
        for knob in ("adaptive_cadence", "gray_detect", "flap_margin"):
            config = ChaosConfig(**{knob: True})
            assert config.any_adaptive
            assert config.arms == ("baseline", "hardened", "adaptive")

    def test_knobs_off_means_two_arms(self):
        config = ChaosConfig()
        assert not config.any_adaptive
        assert config.arms == ("baseline", "hardened")

    def test_knobs_are_independent(self):
        config = ChaosConfig(gray_detect=True)
        assert config.use_gray_detect
        assert not config.use_adaptive_cadence
        assert not config.use_flap_margin

    def test_gray_detect_knob_alone_detects(self):
        result = run_chaos(
            ChaosConfig(
                scenarios=("gray-detect",), duration_s=900.0, tick_s=15.0,
                probe_interval_s=30.0, gray_detect=True,
            )
        )
        adaptive = next(
            o for o in result.outcomes
            if o.arm == "adaptive" and o.strategy == "controller-best"
        )
        assert adaptive.detect_s is not None


class TestPacketReplay:
    """The packet-level chaos replay (``repro chaos --engine packet``)."""

    CONFIG = PacketReplayConfig(duration_s=900.0, flow_s=1.0)

    def test_two_runs_identical(self):
        first = run_chaos_packet(self.CONFIG)
        second = run_chaos_packet(self.CONFIG)
        assert first.samples == second.samples
        assert first.render() == second.render()

    def test_covers_scenarios_paths_and_outage(self):
        result = run_chaos_packet(self.CONFIG)
        scenarios = {s.scenario for s in result.samples}
        assert scenarios == set(self.CONFIG.scenario_names)
        paths = {s.path for s in result.samples}
        assert "direct" in paths and len(paths) >= 2
        # probe-blackout takes the direct path down mid-story: at least
        # one sample must land inside the outage window.
        assert any(not s.alive for s in result.samples)
        for sample in result.samples:
            if sample.alive:
                assert sample.packet_mbps >= 0.0
                assert sample.model_mbps > 0.0
                # tstat-style proxy (retx bytes / acked bytes): can
                # exceed 1 under heavy loss, but never goes negative.
                assert sample.retx_rate >= 0.0

    def test_gray_failure_compounds_loss(self):
        """Mid-episode samples see the degradation the quiet ones don't."""
        result = run_chaos_packet(
            PacketReplayConfig(duration_s=900.0, flow_s=1.0,
                               scenarios=("gray-detect",))
        )
        for path in {s.path for s in result.samples}:
            on_path = [s for s in result.samples if s.path == path and s.alive]
            quiet = max(s.packet_mbps for s in on_path)
            impaired = min(s.packet_mbps for s in on_path)
            assert impaired < quiet

    def test_fastpath_and_scalar_replays_agree(self, monkeypatch):
        fast = run_chaos_packet(self.CONFIG)
        monkeypatch.setenv("REPRO_PACKET_FASTPATH", "0")
        scalar = run_chaos_packet(self.CONFIG)
        assert fast.samples == scalar.samples

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            PacketReplayConfig(scenarios=("nope",))

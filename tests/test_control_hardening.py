"""Hardened probing and degradation: timeouts, retries, staleness, quarantine."""

from __future__ import annotations

import math

import pytest

from repro.control.controller import OverlayController
from repro.control.degradation import DegradationConfig, DegradationGuard
from repro.control.health import HealthTransition, PathState
from repro.control.policy import BestPathPolicy
from repro.control.probes import ProbeConfig, ProbeScheduler
from repro.core.pathset import PathSet
from repro.errors import ControlError
from repro.faults.events import ProbeFaultEvent, ProbeFaultKind, Window
from repro.faults.injector import ProbeFaultModel
from repro.rand import RandomStreams
from repro.tunnel.node import OverlayNode


@pytest.fixture()
def pathset(small_internet) -> PathSet:
    node = OverlayNode(host=small_internet.host("vm"))
    return PathSet.build(small_internet, "server", "client", [node])


def scheduler(pathset, fault_model=None, **overrides) -> ProbeScheduler:
    config = ProbeConfig(**overrides)
    rng = RandomStreams(seed=5).stream("probe")
    return ProbeScheduler(pathset, config, rng, fault_model)


def fault_model(*events) -> ProbeFaultModel:
    return ProbeFaultModel(list(events), RandomStreams(seed=6).stream("pf"))


class TestTimeout:
    def test_rtt_over_deadline_reports_timeout(self, pathset):
        rtt = pathset.direct.rtt_ms(0.0)
        sched = scheduler(pathset, timeout_ms=rtt / 2.0)
        result = sched.probe("direct", 0.0)
        assert not result.ok
        assert result.rtt_ms == math.inf
        assert result.loss == 1.0
        assert sched.probes_timed_out == 1

    def test_generous_deadline_unchanged(self, pathset):
        baseline = scheduler(pathset).probe("direct", 0.0)
        guarded = scheduler(pathset, timeout_ms=60_000.0).probe("direct", 0.0)
        assert guarded == baseline

    def test_timeout_fault_strikes_live_path(self, pathset):
        model = fault_model(
            ProbeFaultEvent(window=Window(0.0, 10.0), fault=ProbeFaultKind.TIMEOUT)
        )
        sched = scheduler(pathset, fault_model=model)
        result = sched.probe("direct", 0.0)
        assert not result.ok
        assert sched.probes_timed_out == 1


class TestRetries:
    def test_failed_probe_retries_on_backoff(self, pathset):
        pathset.direct.links[2].fail()
        sched = scheduler(
            pathset, interval_s=60.0, jitter_frac=0.0, max_retries=2,
            retry_backoff_s=5.0,
        )
        sched.probe("direct", 0.0)
        assert sched._next_due["direct"] == pytest.approx(5.0)  # first retry
        sched.probe("direct", 5.0)
        assert sched._next_due["direct"] == pytest.approx(15.0)  # doubled
        sched.probe("direct", 15.0)
        assert sched._next_due["direct"] == pytest.approx(75.0)  # exhausted
        assert sched.probes_retried == 2
        pathset.direct.links[2].restore()

    def test_backoff_capped_at_interval(self, pathset):
        pathset.direct.links[2].fail()
        sched = scheduler(
            pathset, interval_s=20.0, jitter_frac=0.0, max_retries=5,
            retry_backoff_s=15.0,
        )
        sched.probe("direct", 0.0)
        assert sched._next_due["direct"] == pytest.approx(15.0)
        sched.probe("direct", 15.0)
        assert sched._next_due["direct"] == pytest.approx(35.0)  # 30 capped to 20
        pathset.direct.links[2].restore()

    def test_success_resets_attempts(self, pathset):
        sched = scheduler(
            pathset, interval_s=60.0, jitter_frac=0.0, max_retries=3,
            retry_backoff_s=5.0,
        )
        pathset.direct.links[2].fail()
        sched.probe("direct", 0.0)
        assert sched._attempts["direct"] == 1
        pathset.direct.links[2].restore()
        sched.probe("direct", 5.0)
        assert sched._attempts["direct"] == 0
        assert sched._next_due["direct"] == pytest.approx(65.0)

    def test_no_retries_is_the_pr1_baseline(self, pathset):
        pathset.direct.links[2].fail()
        baseline = scheduler(pathset, interval_s=60.0)
        hardened_off = scheduler(pathset, interval_s=60.0, max_retries=0)
        baseline.probe("direct", 0.0)
        hardened_off.probe("direct", 0.0)
        assert baseline._next_due == hardened_off._next_due
        pathset.direct.links[2].restore()


class TestProbePlaneFaults:
    def test_lost_probe_spends_bytes_returns_nothing(self, pathset):
        model = fault_model(
            ProbeFaultEvent(window=Window(0.0, 10.0), fault=ProbeFaultKind.LOST)
        )
        sched = scheduler(pathset, fault_model=model)
        assert sched.probe("direct", 0.0) is None
        assert sched.probes_lost == 1
        assert sched.total_bytes == 10 * 64  # one-way pings only
        assert "direct" not in sched.last_result

    def test_stale_fault_serves_cached_result_unchanged(self, pathset):
        model = fault_model(
            ProbeFaultEvent(window=Window(50.0, 100.0), fault=ProbeFaultKind.STALE)
        )
        sched = scheduler(pathset, fault_model=model)
        fresh = sched.probe("direct", 0.0)
        served = sched.probe("direct", 60.0)
        assert served is fresh  # original timestamp and all
        assert sched.probes_stale_served == 1
        assert sched.result_age("direct", 60.0) == pytest.approx(60.0)

    def test_stale_fault_without_cache_measures_normally(self, pathset):
        model = fault_model(
            ProbeFaultEvent(window=Window(0.0, 100.0), fault=ProbeFaultKind.STALE)
        )
        sched = scheduler(pathset, fault_model=model)
        result = sched.probe("direct", 0.0)
        assert result is not None
        assert result.at_time == 0.0


class TestLastKnownGood:
    def test_fresh_result_respects_staleness_bound(self, pathset):
        sched = scheduler(pathset, stale_after_s=100.0)
        sched.probe("direct", 0.0)
        assert sched.fresh_result("direct", 50.0) is not None
        assert sched.fresh_result("direct", 101.0) is None
        assert sched.fresh_result("vm", 0.0) is None

    def test_failed_probe_never_enters_last_good(self, pathset):
        sched = scheduler(pathset, stale_after_s=1_000.0)
        sched.probe("direct", 0.0)
        pathset.direct.links[2].fail()
        sched.probe("direct", 100.0)
        good = sched.fresh_result("direct", 150.0)
        assert good is not None and good.ok
        assert good.at_time == 0.0
        pathset.direct.links[2].restore()

    def test_freshest_age(self, pathset):
        sched = scheduler(pathset)
        assert sched.freshest_age(0.0) == math.inf
        sched.probe("direct", 0.0)
        sched.probe("vm", 30.0)
        assert sched.freshest_age(100.0) == pytest.approx(70.0)


class TestDegradationConfig:
    def test_bounds_validated(self):
        with pytest.raises(ControlError):
            DegradationConfig(stale_after_s=300.0, blackout_after_s=100.0)
        with pytest.raises(ControlError):
            DegradationConfig(flap_threshold=1)
        with pytest.raises(ControlError):
            DegradationConfig(fallback_label="")


def failed_transition(label: str, at_time: float) -> HealthTransition:
    return HealthTransition(
        label=label, at_time=at_time, old=PathState.DEGRADED,
        new=PathState.FAILED, reason="test",
    )


class TestDegradationGuard:
    def guard(self, **overrides) -> DegradationGuard:
        defaults = dict(flap_threshold=3, flap_window_s=600.0, quarantine_s=300.0)
        defaults.update(overrides)
        return DegradationGuard(DegradationConfig(**defaults))

    def test_quarantine_after_threshold_failures(self):
        guard = self.guard()
        assert guard.note_transition(failed_transition("vm", 100.0)) is None
        assert guard.note_transition(failed_transition("vm", 200.0)) is None
        quarantine = guard.note_transition(failed_transition("vm", 300.0))
        assert quarantine is not None
        assert quarantine.until == pytest.approx(600.0)
        assert guard.is_quarantined("vm", 599.0)
        assert not guard.is_quarantined("vm", 600.0)
        assert guard.active_quarantines(400.0) == ("vm",)

    def test_failures_outside_window_forgotten(self):
        guard = self.guard(flap_window_s=150.0)
        guard.note_transition(failed_transition("vm", 0.0))
        guard.note_transition(failed_transition("vm", 100.0))
        # The first failure has aged out of the sliding window by now.
        assert guard.note_transition(failed_transition("vm", 200.0)) is None

    def test_fallback_label_never_quarantined(self):
        guard = self.guard()
        for at_time in (100.0, 200.0, 300.0, 400.0):
            assert guard.note_transition(failed_transition("direct", at_time)) is None
        assert not guard.is_quarantined("direct", 500.0)

    def test_non_failed_transitions_ignored(self):
        guard = self.guard()
        healthy = HealthTransition(
            label="vm", at_time=100.0, old=PathState.FAILED,
            new=PathState.HEALTHY, reason="recovered",
        )
        assert guard.note_transition(healthy) is None


class TestControllerLadder:
    def controller(self, small_internet, pathset, model) -> OverlayController:
        sched = ProbeScheduler(
            pathset,
            ProbeConfig(interval_s=30.0, jitter_frac=0.0),
            RandomStreams(seed=5).stream("probe"),
            model,
        )
        return OverlayController(
            internet=small_internet,
            pathset=pathset,
            policy=BestPathPolicy(),
            scheduler=sched,
            tick_s=10.0,
            degradation=DegradationConfig(stale_after_s=60.0, blackout_after_s=120.0),
        )

    def test_blackout_falls_back_to_direct(self, small_internet, pathset):
        # Probes vanish from t=40 on; once nothing is fresher than the
        # blackout bound the controller must park on the fallback path.
        model = fault_model(
            ProbeFaultEvent(window=Window(40.0, 10_000.0), fault=ProbeFaultKind.LOST)
        )
        controller = self.controller(small_internet, pathset, model)
        report = controller.run(600.0)
        assert controller.active == ("direct",)
        fallback = next(
            r for r in report.decisions.records if "safe fallback" in r.reason
        )
        assert fallback.new_active == ("direct",)
        assert report.metrics["degraded_ticks_total{mode=fallback}"] > 0

    def test_stale_window_holds_last_decision(self, small_internet, pathset):
        model = fault_model(
            ProbeFaultEvent(window=Window(40.0, 10_000.0), fault=ProbeFaultKind.LOST)
        )
        controller = self.controller(small_internet, pathset, model)
        report = controller.run(140.0)  # past stale (60) but not blackout (120)+40
        assert report.metrics["degraded_ticks_total{mode=hold}"] > 0
        # Holding means no decision was taken during the stale window.
        assert all(r.at_time < 100.0 for r in report.decisions.records)

    def test_no_degradation_config_is_pr1_behaviour(self, small_internet, pathset):
        sched = ProbeScheduler(
            pathset,
            ProbeConfig(interval_s=30.0, jitter_frac=0.0),
            RandomStreams(seed=5).stream("probe"),
        )
        controller = OverlayController(
            internet=small_internet,
            pathset=pathset,
            policy=BestPathPolicy(),
            scheduler=sched,
            tick_s=10.0,
        )
        report = controller.run(300.0)
        assert controller.guard is None
        assert "degraded_ticks_total{mode=hold}" not in report.metrics

    def test_quarantined_path_hidden_from_policy(self, small_internet, pathset):
        controller = self.controller(small_internet, pathset, None)
        controller.guard._quarantined_until["vm"] = 1_000.0
        controller.scheduler.probe_due(0.0)
        health, probes = controller._policy_views(0.0)
        assert "vm" not in health
        assert "vm" not in probes
        assert "direct" in health


class TestOracleTracking:
    def test_wrong_path_time_accumulates(self, small_internet, pathset):
        # Static on direct while an overlay is strictly better: every
        # tick that direct lags the oracle by >5% counts.
        from repro.control.policy import StaticPolicy

        controller = OverlayController(
            internet=small_internet,
            pathset=pathset,
            policy=StaticPolicy("direct"),
            tick_s=10.0,
            track_oracle=True,
        )
        report = controller.run(100.0)
        assert all(s.best_mbps is not None for s in report.samples)
        best = report.samples[0].best_mbps
        got = report.samples[0].goodput_mbps
        if got < best * 0.95:
            assert report.wrong_path_s > 0.0

    def test_oracle_off_by_default(self, small_internet, pathset):
        controller = OverlayController(
            internet=small_internet,
            pathset=pathset,
            policy=BestPathPolicy(),
            tick_s=10.0,
        )
        report = controller.run(50.0)
        assert all(s.best_mbps is None for s in report.samples)
        assert report.wrong_path_s == 0.0

"""Result export (JSON/CSV)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ConfigError
from repro.io import dump_json, dump_series_csv, dump_table_csv, to_jsonable


class TestToJsonable:
    def test_dataclass_conversion(self):
        from repro.transport.throughput import FlowStats

        stats = FlowStats(
            duration_s=30.0, bytes_acked=100, bytes_retransmitted=1,
            avg_rtt_ms=50.0, throughput_mbps=0.01,
        )
        data = to_jsonable(stats)
        assert data["bytes_acked"] == 100
        json.dumps(data)  # round-trips

    def test_enum_and_tuple(self):
        from repro.tunnel import TunnelType

        assert to_jsonable(TunnelType.GRE) == "gre"
        assert to_jsonable((1, 2.5, "x")) == [1, 2.5, "x"]

    def test_nested_experiment_result_is_serializable(self):
        from repro.experiments.weblab import WeblabConfig, run_weblab

        result = run_weblab(WeblabConfig(seed=3, scale="small", n_clients=4, n_servers=2))
        json.dumps(to_jsonable(result))


class TestDumps:
    def test_dump_json(self, tmp_path):
        target = dump_json({"a": [1, 2]}, tmp_path / "out" / "x.json")
        assert json.loads(target.read_text()) == {"a": [1, 2]}

    def test_dump_series_csv(self, tmp_path):
        target = dump_series_csv(
            {"cdf": [(1.0, 0.5), (2.0, 1.0)]}, tmp_path / "series.csv"
        )
        rows = list(csv.reader(target.open()))
        assert rows[0] == ["series", "x", "y"]
        assert len(rows) == 3
        with pytest.raises(ConfigError):
            dump_series_csv({}, tmp_path / "empty.csv")

    def test_dump_table_csv(self, tmp_path):
        target = dump_table_csv(["a", "b"], [(1, 2), (3, 4)], tmp_path / "t.csv")
        rows = list(csv.reader(target.open()))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
        with pytest.raises(ConfigError):
            dump_table_csv(["a"], [(1, 2)], tmp_path / "bad.csv")
        with pytest.raises(ConfigError):
            dump_table_csv([], [], tmp_path / "bad2.csv")

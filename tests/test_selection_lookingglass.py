"""Selection-regret experiment and the looking glass."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, TopologyError
from repro.experiments.selection_exp import run_selection
from repro.net.looking_glass import show_bgp, show_neighbors, show_path


@pytest.fixture(scope="module")
def selection():
    return run_selection(seed=19, n_pairs=4, probe_intervals_h=(4.0, 24.0))


class TestSelectionRegret:
    def test_oracle_is_the_ceiling(self, selection):
        oracle = selection.by_name("oracle")
        assert oracle.achieved_fraction == 1.0
        for outcome in selection.outcomes:
            assert outcome.achieved_fraction <= 1.0 + 1e-9

    def test_probing_costs_bytes_mptcp_does_not(self, selection):
        assert selection.by_name("probing(4h)").probe_overhead_mb > 0
        assert selection.by_name("mptcp").probe_overhead_mb == 0.0

    def test_frequent_probing_costs_more(self, selection):
        frequent = selection.by_name("probing(4h)")
        rare = selection.by_name("probing(24h)")
        assert frequent.probe_overhead_mb > rare.probe_overhead_mb

    def test_mptcp_reflects_tracking_efficiency(self, selection):
        from repro.experiments.selection_exp import MPTCP_TRACKING_EFFICIENCY

        assert selection.by_name("mptcp").achieved_fraction == pytest.approx(
            MPTCP_TRACKING_EFFICIENCY, abs=0.01
        )

    def test_render(self, selection):
        text = selection.render()
        assert "oracle" in text
        assert "mptcp" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_selection(n_pairs=0)

    def test_unknown_strategy_lookup(self, selection):
        with pytest.raises(ExperimentError):
            selection.by_name("carrier-pigeon")


class TestLookingGlass:
    def test_show_bgp_lists_and_stars_candidates(self, small_internet):
        client = small_internet.host("client")
        server = small_internet.host("server")
        text = show_bgp(small_internet, client.asn, server.asn)
        assert "as-path" in text
        assert "*" in text
        assert f"AS{server.asn}" in text

    def test_show_bgp_no_route(self, small_internet):
        client = small_internet.host("client")
        assert "no route" in show_bgp(small_internet, client.asn, client.asn).lower() or (
            "best" in show_bgp(small_internet, client.asn, client.asn)
        )

    def test_show_neighbors(self, small_internet):
        client = small_internet.host("client")
        text = show_neighbors(small_internet, client.asn)
        assert "provider" in text
        with pytest.raises(TopologyError):
            show_neighbors(small_internet, 999_999)

    def test_show_path(self, small_internet):
        text = show_path(small_internet, "client", "server", at_time=3_600.0)
        assert "client" in text
        assert "server" in text
        assert "rtt=" in text
        assert "host_access" in text

"""End-to-end experiment drivers at small scale.

These are the integration tests: each driver must run, produce the
paper's artifact, and exhibit the qualitative shape the paper reports
(who wins, direction of trends) — absolute numbers are checked by the
benchmark harness at larger scale.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments import build_world
from repro.experiments.classify import run_classify
from repro.experiments.controlled import ControlledConfig, run_controlled
from repro.experiments.cost import run_cost
from repro.experiments.diversity_exp import run_diversity
from repro.experiments.factors import run_factors
from repro.experiments.longitudinal import run_longitudinal
from repro.experiments.weblab import WeblabConfig, run_weblab


@pytest.fixture(scope="module")
def small_campaign():
    """One controlled campaign shared by the dependent-analysis tests."""
    return run_controlled(ControlledConfig(seed=11, scale="small"))


class TestWorldBuilder:
    def test_small_world_shape(self):
        world = build_world(seed=3, scale="small")
        assert len(world.client_names()) == 12
        assert len(world.server_names) == 4
        assert len(world.dc_cities) == 3

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            build_world(seed=3, scale="galactic")

    def test_deterministic(self):
        w1 = build_world(seed=3, scale="small")
        w2 = build_world(seed=3, scale="small")
        assert w1.server_names == w2.server_names
        assert w1.client_names() == w2.client_names()

    def test_servers_in_paper_countries(self):
        world = build_world(seed=3, scale="small")
        countries = set()
        from repro.geo import city

        for name in world.server_names:
            countries.add(city(world.internet.host(name).city_name).country)
        assert countries <= {"CA", "US", "DE", "CH", "JP", "KR", "CN"}


class TestWeblab:
    def test_split_beats_plain_overlay(self):
        result = run_weblab(WeblabConfig(seed=11, scale="small"))
        assert (
            result.split_summary.fraction_improved
            > result.overlay_summary.fraction_improved
        )
        assert result.split_summary.mean_factor_improved > 1.0
        assert result.total_paths_observed == len(result.pairs) * 4

    def test_render_contains_figure_artifacts(self):
        result = run_weblab(WeblabConfig(seed=11, scale="small"))
        text = result.render(series_points=5)
        assert "Fig. 2" in text
        assert "fig2/overlay" in text
        assert "fig2/split-overlay" in text


class TestControlled:
    def test_summaries_ordered(self, small_campaign):
        result = small_campaign.result
        # Discrete is the bound: at least as good as split.
        assert (
            result.discrete_summary.fraction_improved
            >= result.split_summary.fraction_improved
        )

    def test_split_close_to_discrete(self, small_campaign):
        """Sec. III-B: proxy processing does not hurt the gains."""
        result = small_campaign.result
        assert result.split_summary.mean_factor_improved == pytest.approx(
            result.discrete_summary.mean_factor_improved, rel=0.15
        )

    def test_overlay_reduces_retransmissions(self, small_campaign):
        direct_med, overlay_med = small_campaign.result.median_retransmission_rates()
        assert overlay_med <= direct_med

    def test_rtt_trend_with_direct_rtt(self, small_campaign):
        fractions = small_campaign.result.rtt_reduction_fractions()
        assert 0.0 <= fractions["all"] <= 1.0

    def test_render(self, small_campaign):
        text = small_campaign.result.render(series_points=5)
        for marker in ("Fig. 3", "Fig. 4", "Fig. 5"):
            assert marker in text


class TestLongitudinal:
    def test_tracks_top_paths(self, small_campaign):
        result = run_longitudinal(small_campaign, top_n=6, samples=8)
        assert len(result.paths) == 6
        assert all(len(p.direct_samples) == 8 for p in result.paths)
        # Selected paths are the most-improved: most should stay ahead.
        assert result.fraction_consistently_improved() >= 0.5

    def test_min_nodes_within_bounds(self, small_campaign):
        result = run_longitudinal(small_campaign, top_n=5, samples=6)
        node_count = len(result.paths[0].node_samples)
        for needed in result.min_nodes_distribution():
            assert 1 <= needed <= node_count

    def test_table1_monotone(self, small_campaign):
        result = run_longitudinal(small_campaign, top_n=5, samples=6)
        means = [mean for _k, mean, _median in result.table1()]
        assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))

    def test_render(self, small_campaign):
        result = run_longitudinal(small_campaign, top_n=4, samples=5)
        text = result.render()
        for marker in ("Fig. 6", "Fig. 7", "Table I"):
            assert marker in text

    def test_bad_plan_rejected(self, small_campaign):
        with pytest.raises(ExperimentError):
            run_longitudinal(small_campaign, top_n=0)


class TestDiversity:
    def test_scores_in_range(self, small_campaign):
        result = run_diversity(small_campaign)
        for record in result.records:
            assert 0.0 <= record.score <= 1.0

    def test_common_routers_at_ends(self, small_campaign):
        """Sec. V-A: shared routers cluster near the endpoints."""
        result = run_diversity(small_campaign)
        assert result.end_segment_share() > 0.5

    def test_render(self, small_campaign):
        assert "Fig. 8" in run_diversity(small_campaign).render(series_points=4)


class TestFactors:
    def test_bins_cover_all_pairs(self, small_campaign):
        result = run_factors(small_campaign)
        assert sum(b.count for b in result.rtt_bins()) == len(result.records)
        assert sum(b.count for b in result.loss_bins()) == len(result.records)

    def test_improved_overlays_are_longer(self, small_campaign):
        """Sec. V-B's surprise: gains come despite longer router paths."""
        result = run_factors(small_campaign)
        frac = result.longer_hop_fraction_among_improved(min_gain=1.0)
        assert frac > 0.5

    def test_render(self, small_campaign):
        text = run_factors(small_campaign).render()
        for marker in ("Fig. 9", "Fig. 10", "Fig. 11"):
            assert marker in text


class TestClassify:
    def test_thresholds_extracted(self, small_campaign):
        result = run_classify(small_campaign)
        assert result.accuracy > 0.8
        bounds = result.single_thresholds()
        assert bounds, "expected at least one positive-rule threshold"
        # The paper's thresholds are small double-digit percentages.
        for value in bounds.values():
            assert -0.5 < value < 0.6

    def test_render(self, small_campaign):
        assert "C4.5" in run_classify(small_campaign).render()


class TestCost:
    def test_overlay_cheaper(self):
        weblab = run_weblab(WeblabConfig(seed=11, scale="small"))
        result = run_cost(weblab)
        assert result.median_cost_ratio() < 1.0

    def test_price_table_covers_dimensions(self):
        weblab = run_weblab(WeblabConfig(seed=11, scale="small"))
        result = run_cost(weblab)
        table = result.price_table()
        assert len(table) == 2 * 3 * 5  # server x port x traffic
        assert "Sec. VII-D" in result.render()

"""Unit conversions and validators."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro import units


class TestConversions:
    def test_mbps_to_bytes_roundtrip(self):
        assert units.bytes_per_sec_to_mbps(units.mbps_to_bytes_per_sec(100.0)) == pytest.approx(
            100.0
        )

    def test_mbps_to_bytes_per_sec_value(self):
        # 8 Mbps = 1 MB/s
        assert units.mbps_to_bytes_per_sec(8.0) == pytest.approx(1_000_000.0)

    def test_ms_seconds_roundtrip(self):
        assert units.seconds_to_ms(units.ms_to_seconds(123.4)) == pytest.approx(123.4)

    def test_transfer_time(self):
        # 100 MB at 100 Mbps = 8 seconds
        assert units.transfer_time_seconds(100_000_000, 100.0) == pytest.approx(8.0)

    def test_transfer_time_rejects_zero_rate(self):
        with pytest.raises(ConfigError):
            units.transfer_time_seconds(1_000, 0.0)

    def test_transfer_time_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            units.transfer_time_seconds(-1, 10.0)

    def test_default_mss(self):
        assert units.DEFAULT_MSS == 1460


class TestValidators:
    def test_check_fraction_accepts_bounds(self):
        assert units.check_fraction(0.0, "x") == 0.0
        assert units.check_fraction(1.0, "x") == 1.0

    @pytest.mark.parametrize("bad", [-0.001, 1.001, 5.0])
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(ConfigError):
            units.check_fraction(bad, "x")

    def test_check_positive(self):
        assert units.check_positive(0.1, "x") == 0.1
        with pytest.raises(ConfigError):
            units.check_positive(0.0, "x")

    def test_check_non_negative(self):
        assert units.check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigError):
            units.check_non_negative(-0.1, "x")


@given(st.floats(min_value=0.001, max_value=1e6))
def test_rate_roundtrip_property(mbps):
    assert units.bytes_per_sec_to_mbps(units.mbps_to_bytes_per_sec(mbps)) == pytest.approx(mbps)


@given(
    st.integers(min_value=0, max_value=10**12),
    st.floats(min_value=0.01, max_value=1e5),
)
def test_transfer_time_scales_inversely_with_rate(size, rate):
    t1 = units.transfer_time_seconds(size, rate)
    t2 = units.transfer_time_seconds(size, rate * 2)
    assert t2 == pytest.approx(t1 / 2)

"""Geography: distances, propagation delay, city database."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.geo import (
    CITIES,
    GeoPoint,
    cities_in_region,
    city,
    haversine_km,
    propagation_delay_ms,
    rtt_floor_ms,
)

points = st.builds(
    GeoPoint,
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(10.0, 20.0)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_ny_london(self):
        d = haversine_km(city("new_york").point, city("london").point)
        assert 5_400 < d < 5_700  # ~5,570 km

    def test_antipodal_is_half_circumference(self):
        d = haversine_km(GeoPoint(0, 0), GeoPoint(0, 180))
        assert d == pytest.approx(3.14159265 * 6_371, rel=1e-3)

    @given(points, points)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestPropagationDelay:
    def test_transatlantic_rtt_reasonable(self):
        # NY <-> London fiber RTT is ~70 ms in practice.
        rtt = rtt_floor_ms(city("new_york").point, city("london").point)
        assert 50 < rtt < 120

    def test_inflation_below_one_rejected(self):
        with pytest.raises(ConfigError):
            propagation_delay_ms(GeoPoint(0, 0), GeoPoint(1, 1), inflation=0.9)

    @given(points, points)
    def test_delay_non_negative(self, a, b):
        assert propagation_delay_ms(a, b) >= 0.0


class TestCityDb:
    def test_paper_datacenter_cities_present(self):
        # The five Softlayer DCs from Sec. II-A must exist.
        for name in ("washington_dc", "san_jose", "dallas", "amsterdam", "tokyo"):
            assert name in CITIES

    def test_mirror_countries_covered(self):
        # Eclipse mirrors: Canada, USA, Germany, Switzerland, Japan, Korea, China.
        countries = {c.country for c in CITIES.values()}
        assert {"CA", "US", "DE", "CH", "JP", "KR", "CN"} <= countries

    def test_five_continents(self):
        regions = {c.region for c in CITIES.values()}
        assert regions == {"na", "sa", "eu", "as", "oc"}

    def test_unknown_city_raises(self):
        with pytest.raises(ConfigError):
            city("atlantis")

    def test_cities_in_region_sorted_and_filtered(self):
        eu = cities_in_region("eu")
        assert all(c.region == "eu" for c in eu)
        assert [c.name for c in eu] == sorted(c.name for c in eu)

    def test_unknown_region_raises(self):
        with pytest.raises(ConfigError):
            cities_in_region("mars")

    def test_geopoint_validation(self):
        with pytest.raises(ConfigError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ConfigError):
            GeoPoint(0.0, 181.0)

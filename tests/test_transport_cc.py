"""Congestion-control algorithms: Reno, Cubic, LIA, OLIA."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TransportError
from repro.transport.cc import CubicCC, LiaCoupler, OliaCoupler, RenoCC
from repro.transport.cc.base import MIN_CWND_SEGMENTS


class TestReno:
    def test_slow_start_doubles(self):
        cc = RenoCC(initial_cwnd=10.0)
        cc.on_round(lost=False, rtt_s=0.1)
        assert cc.cwnd == 20.0

    def test_loss_exits_slow_start_and_halves(self):
        cc = RenoCC(initial_cwnd=16.0)
        cc.on_round(lost=True, rtt_s=0.1)
        assert cc.cwnd == 8.0
        assert not cc.in_slow_start
        cc.on_round(lost=False, rtt_s=0.1)
        assert cc.cwnd == 9.0  # additive now

    def test_floor(self):
        cc = RenoCC(initial_cwnd=2.0)
        for _ in range(5):
            cc.on_round(lost=True, rtt_s=0.1)
        assert cc.cwnd == MIN_CWND_SEGMENTS

    def test_clamp(self):
        cc = RenoCC(initial_cwnd=100.0)
        cc.clamp(50.0)
        assert cc.cwnd == 50.0

    def test_invalid_params(self):
        with pytest.raises(TransportError):
            RenoCC(additive_increase=0.0)
        with pytest.raises(TransportError):
            RenoCC(multiplicative_decrease=1.0)
        with pytest.raises(TransportError):
            RenoCC(initial_cwnd=1.0)
        with pytest.raises(TransportError):
            RenoCC().on_round(lost=False, rtt_s=0.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_window_always_valid(self, outcomes):
        cc = RenoCC()
        for lost in outcomes:
            cc.on_round(lost=lost, rtt_s=0.05)
            cc.clamp(10_000.0)
            assert MIN_CWND_SEGMENTS <= cc.cwnd <= 10_000.0


class TestCubic:
    def test_decrease_factor(self):
        cc = CubicCC(initial_cwnd=100.0)
        cc.on_round(lost=True, rtt_s=0.1)
        assert cc.cwnd == pytest.approx(70.0)

    def test_recovers_toward_wmax(self):
        cc = CubicCC(initial_cwnd=100.0)
        cc.on_round(lost=True, rtt_s=0.1)  # w_max=100, cwnd=70
        for _ in range(200):
            cc.on_round(lost=False, rtt_s=0.1)
        assert cc.cwnd > 100.0  # eventually probes past w_max

    def test_concave_near_wmax(self):
        """Growth slows as the window approaches w_max."""
        cc = CubicCC(initial_cwnd=1_000.0)
        cc.on_round(lost=True, rtt_s=0.1)
        deltas = []
        prev = cc.cwnd
        for _ in range(30):
            cc.on_round(lost=False, rtt_s=0.1)
            deltas.append(cc.cwnd - prev)
            prev = cc.cwnd
        assert deltas[0] > deltas[len(deltas) // 2]

    def test_never_shrinks_without_loss(self):
        cc = CubicCC(initial_cwnd=50.0)
        cc.on_round(lost=True, rtt_s=0.1)
        prev = cc.cwnd
        for _ in range(100):
            cc.on_round(lost=False, rtt_s=0.1)
            assert cc.cwnd >= prev
            prev = cc.cwnd

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_window_always_valid(self, outcomes):
        cc = CubicCC()
        for lost in outcomes:
            cc.on_round(lost=lost, rtt_s=0.05)
            assert cc.cwnd >= MIN_CWND_SEGMENTS


def drive_coupler(coupler_cls, rtts, loss_on, rounds=300):
    """Drive a coupler's subflows with deterministic loss patterns.

    ``loss_on[i]`` is the loss period of subflow i (a loss every k-th
    round; 0 means lossless).
    """
    coupler = coupler_cls()
    subflows = [coupler.new_subflow() for _ in rtts]
    for r in range(1, rounds + 1):
        for i, sf in enumerate(subflows):
            lost = loss_on[i] > 0 and r % loss_on[i] == 0
            sf.on_round(lost=lost, rtt_s=rtts[i])
            sf.clamp(5_000.0)
    return coupler, subflows


@pytest.mark.parametrize("coupler_cls", [LiaCoupler, OliaCoupler])
class TestCoupledCommon:
    def test_shifts_window_to_better_path(self, coupler_cls):
        """The coupled design goal: traffic moves off congested paths."""
        _, subflows = drive_coupler(coupler_cls, rtts=[0.1, 0.1], loss_on=[5, 50])
        assert subflows[1].cwnd > subflows[0].cwnd

    def test_loss_halves_window(self, coupler_cls):
        coupler = coupler_cls()
        sf = coupler.new_subflow(initial_cwnd=64.0)
        sf.on_round(lost=True, rtt_s=0.1)
        assert sf.cwnd == 32.0

    def test_windows_stay_positive(self, coupler_cls):
        _, subflows = drive_coupler(coupler_cls, rtts=[0.05, 0.2, 0.4], loss_on=[3, 7, 11])
        for sf in subflows:
            assert sf.cwnd >= MIN_CWND_SEGMENTS

    def test_rejects_bad_rtt(self, coupler_cls):
        coupler = coupler_cls()
        sf = coupler.new_subflow()
        with pytest.raises(TransportError):
            sf.on_round(lost=False, rtt_s=-1.0)


class TestLiaSpecific:
    def test_increase_capped_by_reno(self):
        """Per RFC 6356, per-ACK increase never exceeds 1/cwnd."""
        coupler = LiaCoupler()
        sf = coupler.new_subflow(initial_cwnd=10.0)
        coupler.new_subflow(initial_cwnd=10.0)
        assert coupler.increase_for(sf) <= 1.0 + 1e-9  # cwnd * (1/cwnd)


class TestOliaSpecific:
    def test_alpha_favours_best_small_window_path(self):
        coupler = OliaCoupler()
        good = coupler.new_subflow(initial_cwnd=4.0)
        bad = coupler.new_subflow(initial_cwnd=100.0)
        good.loss_rate_estimate = 1e-6
        bad.loss_rate_estimate = 1e-2
        assert coupler._alpha_for(0) > 0  # best-but-small gets a boost
        assert coupler._alpha_for(1) < 0  # max-window path gives it up

    def test_alpha_zero_when_best_is_max(self):
        coupler = OliaCoupler()
        best = coupler.new_subflow(initial_cwnd=100.0)
        other = coupler.new_subflow(initial_cwnd=10.0)
        best.loss_rate_estimate = 1e-6
        other.loss_rate_estimate = 1e-2
        assert coupler._alpha_for(0) == 0.0
        assert coupler._alpha_for(1) == 0.0

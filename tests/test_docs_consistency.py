"""The docs-consistency gate, run as part of tier-1.

``scripts/check_docs.py`` asserts that every ``repro`` CLI verb is
documented in README.md and that every ``DESIGN.md §N`` reference in
the docs resolves to a real section.  Running it from the test suite
means docs rot fails locally, not just in CI.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsConsistency:
    def test_checker_passes(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "docs-consistency OK" in result.stdout

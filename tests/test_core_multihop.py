"""Multi-hop overlay paths (Sec. VII-B extension)."""

from __future__ import annotations

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.cronet import CRONet
from repro.core.multihop import MultiHopPathSet, upgrade_pathset
from repro.errors import ConfigError
from repro.net import Internet, TopologyConfig, generate_topology
from repro.net.asn import ASKind
from repro.rand import RandomStreams

T0 = 6 * 3_600.0


@pytest.fixture()
def multihop_world():
    streams = RandomStreams(seed=61)
    topo = generate_topology(TopologyConfig.small(), streams)
    provider = CloudProvider.deploy(topo, ("dallas", "amsterdam", "tokyo"), streams)
    internet = Internet(topo, streams)
    stubs = topo.ases_of_kind(ASKind.STUB)
    internet.attach_host("srv", stubs[0].asn, kind="server", rwnd_bytes=4_194_304)
    internet.attach_host("cli", stubs[-1].asn, kind="planetlab")
    cronet = CRONet.build(internet, provider, ["dallas", "amsterdam", "tokyo"])
    return internet, cronet


class TestEnumeration:
    def test_option_count(self, multihop_world):
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        # 3 one-hop + 3*2 ordered two-hop sequences.
        assert len(multihop.options) == 3 + 6
        assert {o.hop_count for o in multihop.options} == {1, 2}

    def test_segments_connect(self, multihop_world):
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        for option in multihop.options:
            assert len(option.segments) == option.hop_count + 1
            full = option.concatenated
            assert full.router_ids[0] == internet.host("srv").host_id
            assert full.router_ids[-1] == internet.host("cli").host_id

    def test_validation(self, multihop_world):
        internet, cronet = multihop_world
        with pytest.raises(ConfigError):
            MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=0)
        with pytest.raises(ConfigError):
            MultiHopPathSet.build(internet, "srv", "cli", [], max_hops=2)


class TestThroughput:
    def test_best_by_hop_count(self, multihop_world):
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        best = multihop.best_by_hop_count(T0)
        assert set(best) == {1, 2}
        for _name, value in best.values():
            assert value > 0

    def test_two_hop_split_has_two_relays(self, multihop_world):
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        two_hop = next(o for o in multihop.options if o.hop_count == 2)
        chain = multihop.split_chain(two_hop)
        assert chain.relay_count == 2

    def test_inter_node_segment_rides_backbone(self, multihop_world):
        """The middle leg between two DCs uses the private backbone."""
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        two_hops = [o for o in multihop.options if o.hop_count == 2]
        assert any(multihop.uses_backbone(o) for o in two_hops)

    def test_plain_connection_efficiency_penalty(self, multihop_world):
        internet, cronet = multihop_world
        multihop = MultiHopPathSet.build(internet, "srv", "cli", cronet.nodes, max_hops=2)
        two_hop = next(o for o in multihop.options if o.hop_count == 2)
        conn = multihop.plain_connection(two_hop)
        assert conn.params.efficiency < 1.0


class TestUpgrade:
    def test_upgrade_pathset(self, multihop_world):
        internet, cronet = multihop_world
        pathset = cronet.path_set("srv", "cli")
        multihop = upgrade_pathset(pathset, max_hops=2)
        one_hop_names = {o.name for o in multihop.options if o.hop_count == 1}
        assert one_hop_names == set(cronet.node_names)

"""Unit tests of the struct-of-arrays link-state mirror.

Identity assertions use ``==`` on raw floats on purpose: the
fastpath's contract with the scalar walk is *bit* equality, not
approximate equality — a one-ulp drift would break the study-level
byte-identity guarantee downstream.
"""

from __future__ import annotations

import pytest

from repro.control.controller import OverlayController
from repro.control.health import HealthConfig
from repro.control.metrics import MetricsRegistry
from repro.control.policy import BestPathPolicy
from repro.core.pathset import PathSet
from repro.net.asn import ASKind
from repro.net.path import RouterPath
from repro.tunnel.node import OverlayNode

TIMES = (0.0, 1_800.0, 43_200.0, 90_000.0)


@pytest.fixture()
def fastpath(small_internet):
    mirror = small_internet.fastpath
    assert mirror is not None, "fixture worlds must build with the mirror"
    return mirror


def _assert_lists_match_links(fastpath, t: float) -> None:
    one_way, loss, bulk, avail = fastpath.metric_lists(t, fastpath.state_key())
    for i, link in enumerate(fastpath._links):
        assert one_way[i] == link.one_way_delay_ms(t)
        assert loss[i] == link.loss(t)
        assert bulk[i] == link.bulk_loss(t)
        assert avail[i] == link.available_bw_mbps(t)


class TestMetricIdentity:
    def test_metric_lists_match_scalar_links_over_time(self, fastpath):
        for t in TIMES:
            _assert_lists_match_links(fastpath, t)

    def test_identity_holds_under_failures_and_impairments(
        self, small_internet, fastpath
    ):
        links = sorted(small_internet.links_by_id.values(), key=lambda l: l.link_id)
        links[0].fail()
        links[1].impair(
            extra_loss=0.2, extra_delay_ms=40.0, util_surge=0.3, bulk_extra_loss=0.5
        )
        links[2].impair(util_surge=0.9)
        for t in TIMES:
            _assert_lists_match_links(fastpath, t)

    def test_path_metrics_match_object_walk(self, small_internet):
        path = small_internet.resolve_live_path("server", "client")
        bare = RouterPath(  # no mirror handle: always walks link objects
            src_name=path.src_name,
            dst_name=path.dst_name,
            router_ids=path.router_ids,
            links=path.links,
        )
        for t in TIMES:
            assert path.metrics(t) == bare.metrics(t)
            assert path.is_alive() == bare.is_alive()


class TestInvalidation:
    """Direct link mutations (no invalidate_path_cache call) must be
    visible on the very next query — the epoch compare is the contract."""

    def test_direct_fail_restore_tracked(self, small_internet):
        path = small_internet.resolve_live_path("server", "client")
        t = 1_200.0
        before = path.metrics(t)
        assert path.is_alive()
        link = path.links[0]
        link.fail()
        assert not path.is_alive()
        assert path.metrics(t).loss == 1.0
        link.restore()
        assert path.is_alive()
        assert path.metrics(t) == before

    def test_direct_impairment_tracked(self, small_internet):
        path = small_internet.resolve_live_path("server", "client")
        t = 1_200.0
        before = path.metrics(t)
        link = path.links[0]
        link.impair(extra_delay_ms=25.0)
        assert path.metrics(t).rtt_ms == before.rtt_ms + 50.0
        link.clear_impairment()
        assert path.metrics(t) == before


class TestStateInterning:
    def test_rewound_state_reuses_its_id(self, small_internet, fastpath):
        clean = fastpath.state_key()
        link = sorted(small_internet.links_by_id.values(), key=lambda l: l.link_id)[0]
        link.fail()
        failed = fastpath.state_key()
        assert failed != clean
        link.restore()
        assert fastpath.state_key() == clean
        link.fail()
        assert fastpath.state_key() == failed

    def test_rows_stable_across_host_attach(self, small_internet, fastpath):
        fastpath.sync()
        rows_before = dict(fastpath._row)
        stub = small_internet.topology.ases_of_kind(ASKind.STUB)[1]
        small_internet.attach_host("late-probe", stub.asn, kind="planetlab")
        fastpath.sync()
        for link_id, row in rows_before.items():
            assert fastpath._row[link_id] == row


class TestDecisionMemoInvalidation:
    """Regression: injector-style mutations bypass invalidate_path_cache
    entirely, yet the controller's memoized label rates must not serve
    a stale decision across the flip."""

    def _controller(self, small_internet):
        node = OverlayNode(host=small_internet.host("vm"))
        pathset = PathSet.build(small_internet, "server", "client", [node])
        return OverlayController(
            internet=small_internet,
            pathset=pathset,
            policy=BestPathPolicy(),
            scheduler=None,
            health_config=HealthConfig(),
            metrics=MetricsRegistry(),
            tick_s=5.0,
        )

    def test_link_flip_mid_episode_invalidates_rate_memo(self, small_internet):
        controller = self._controller(small_internet)
        now = 600.0
        warm = controller._label_rate("direct", now)
        assert warm > 0.0
        assert controller._label_rate("direct", now) == warm  # memo hit
        overlay_ids = {
            link.link_id
            for option in controller.pathset.options
            for link in option.concatenated.links
        }
        link = next(
            link
            for link in controller.pathset.direct.links
            if link.link_id not in overlay_ids
        )
        link.fail()  # no invalidate_path_cache, exactly like a fault event
        assert controller._label_rate("direct", now) == 0.0
        link.restore()
        assert controller._label_rate("direct", now) == warm

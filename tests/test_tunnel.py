"""Tunnels, NAT and overlay-node behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import NatError, TunnelError
from repro.tunnel import MasqueradeNat, NodeMode, OverlayNode, TunnelSpec, TunnelType
from repro.tunnel.encap import plain_mss
from repro.units import DEFAULT_MSS


class TestEncapsulation:
    def test_gre_overhead(self):
        assert TunnelType.GRE.overhead_bytes == 24

    def test_ipsec_heavier_than_gre(self):
        assert TunnelType.IPSEC_ESP.overhead_bytes > TunnelType.GRE.overhead_bytes

    def test_inner_mss_reduced(self):
        spec = TunnelSpec(tunnel_type=TunnelType.GRE)
        assert spec.inner_mss_bytes == DEFAULT_MSS - 24
        assert spec.efficiency < 1.0

    def test_tiny_mtu_rejected(self):
        with pytest.raises(TunnelError):
            TunnelSpec(tunnel_type=TunnelType.IPSEC_ESP, mtu_bytes=100)

    def test_plain_mss(self):
        assert plain_mss() == DEFAULT_MSS
        with pytest.raises(TunnelError):
            plain_mss(30)


class TestNat:
    def test_translate_and_untranslate(self):
        nat = MasqueradeNat("198.51.100.1")
        binding = nat.translate("tcp", "10.0.0.5", 44_000)
        assert binding.nat_ip == "198.51.100.1"
        back = nat.untranslate("tcp", binding.nat_port)
        assert (back.src_ip, back.src_port) == ("10.0.0.5", 44_000)

    def test_same_flow_reuses_binding(self):
        nat = MasqueradeNat("198.51.100.1")
        b1 = nat.translate("tcp", "10.0.0.5", 44_000)
        b2 = nat.translate("tcp", "10.0.0.5", 44_000)
        assert b1 is b2
        assert nat.active_bindings == 1

    def test_unknown_inbound_rejected(self):
        nat = MasqueradeNat("198.51.100.1")
        with pytest.raises(NatError):
            nat.untranslate("tcp", 40_000)

    def test_protocol_mismatch_rejected(self):
        nat = MasqueradeNat("198.51.100.1")
        binding = nat.translate("tcp", "10.0.0.5", 44_000)
        with pytest.raises(NatError):
            nat.untranslate("udp", binding.nat_port)

    def test_expire_releases_binding(self):
        nat = MasqueradeNat("198.51.100.1")
        binding = nat.translate("tcp", "10.0.0.5", 44_000)
        nat.expire("tcp", "10.0.0.5", 44_000)
        assert nat.active_bindings == 0
        with pytest.raises(NatError):
            nat.untranslate("tcp", binding.nat_port)
        with pytest.raises(NatError):
            nat.expire("tcp", "10.0.0.5", 44_000)

    def test_port_pool_exhaustion(self):
        nat = MasqueradeNat("198.51.100.1", port_range=(40_000, 40_002))
        for port in (1, 2, 3):
            nat.translate("tcp", "10.0.0.5", port)
        with pytest.raises(NatError):
            nat.translate("tcp", "10.0.0.5", 4)

    def test_invalid_inputs(self):
        with pytest.raises(NatError):
            MasqueradeNat("x", port_range=(0, 10))
        nat = MasqueradeNat("198.51.100.1")
        with pytest.raises(NatError):
            nat.translate("tcp", "10.0.0.5", 0)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["tcp", "udp"]), st.integers(1, 65_535)),
            min_size=1,
            max_size=200,
            unique=True,
        )
    )
    def test_bijectivity_property(self, flows):
        """Live bindings are a bijection between flows and NAT ports."""
        nat = MasqueradeNat("198.51.100.1")
        bindings = {}
        for protocol, port in flows:
            bindings[(protocol, port)] = nat.translate(protocol, "10.1.2.3", port)
        nat_ports = {(b.protocol, b.nat_port) for b in bindings.values()}
        assert len(nat_ports) == len(bindings)
        for (protocol, port), binding in bindings.items():
            back = nat.untranslate(protocol, binding.nat_port)
            assert (back.src_ip, back.src_port) == ("10.1.2.3", port)


class TestOverlayNode:
    def _node(self, small_internet):
        return OverlayNode(host=small_internet.host("vm"))

    def test_requires_cloud_vm(self, small_internet):
        with pytest.raises(TunnelError):
            OverlayNode(host=small_internet.host("client"))

    def test_tunnel_lifecycle(self, small_internet):
        node = self._node(small_internet)
        spec = node.establish_tunnel("client")
        assert node.tunnel_for("client") is spec
        assert node.establish_tunnel("client") is spec  # idempotent
        node.tear_down_tunnel("client")
        with pytest.raises(TunnelError):
            node.tunnel_for("client")
        with pytest.raises(TunnelError):
            node.tear_down_tunnel("client")

    def test_mode_parameters(self, small_internet):
        node = self._node(small_internet)
        split = node.with_mode(NodeMode.SPLIT)
        assert node.relay_efficiency > split.relay_efficiency
        assert split.added_delay_ms > node.added_delay_ms

    def test_with_mode_shares_tunnels(self, small_internet):
        node = self._node(small_internet)
        node.establish_tunnel("client")
        split = node.with_mode(NodeMode.SPLIT)
        assert split.tunnel_for("client") is node.tunnel_for("client")

    def test_nat_bound_to_node_address(self, small_internet):
        node = self._node(small_internet)
        assert node.nat.nat_ip != "0.0.0.0"

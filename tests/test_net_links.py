"""Link model: utilization, queuing, loss, availability, failure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, LinkError
from repro.net.congestion import BackgroundLoad, Episode, peak_hour_for_longitude
from repro.net.links import (
    LOSS_KNEE,
    MAX_CONGESTION_LOSS,
    MIN_FAIR_SHARE,
    QUEUE_KNEE,
    Link,
    LinkClass,
)


def make_link(base_util=0.3, base_loss=1e-4, capacity=10_000.0, max_queue=40.0, diurnal=0.0):
    return Link(
        link_id=1,
        router_a=1,
        router_b=2,
        capacity_mbps=capacity,
        prop_delay_ms=10.0,
        base_loss=base_loss,
        link_class=LinkClass.T1_PEERING,
        load=BackgroundLoad(
            base_util=base_util, diurnal_amp=diurnal, episode_rate_per_day=0.0, seed=3
        ),
        max_queue_ms=max_queue,
    )


class TestLinkConstruction:
    def test_self_loop_rejected(self):
        with pytest.raises(LinkError):
            Link(
                link_id=1,
                router_a=5,
                router_b=5,
                capacity_mbps=100,
                prop_delay_ms=1,
                base_loss=0,
                link_class=LinkClass.ACCESS,
                load=BackgroundLoad(base_util=0.1),
            )

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigError):
            make_link(base_loss=1.5)

    def test_other_end(self):
        link = make_link()
        assert link.other_end(1) == 2
        assert link.other_end(2) == 1
        with pytest.raises(LinkError):
            link.other_end(99)


class TestQueuing:
    def test_no_queue_below_knee(self):
        link = make_link(base_util=QUEUE_KNEE - 0.05)
        assert link.queuing_delay_ms(0.0) == 0.0

    def test_queue_grows_with_load(self):
        low = make_link(base_util=0.7).queuing_delay_ms(0.0)
        high = make_link(base_util=0.9).queuing_delay_ms(0.0)
        assert 0.0 < low < high

    def test_queue_capped_by_buffer(self):
        link = make_link(base_util=0.995, max_queue=40.0)
        assert link.queuing_delay_ms(0.0) <= 40.0

    def test_one_way_delay_includes_propagation(self):
        link = make_link(base_util=0.1)
        assert link.one_way_delay_ms(0.0) == pytest.approx(10.0)


class TestLoss:
    def test_base_loss_only_below_knee(self):
        link = make_link(base_util=LOSS_KNEE - 0.1, base_loss=1e-4)
        assert link.loss(0.0) == pytest.approx(1e-4)

    def test_congestion_loss_above_knee(self):
        link = make_link(base_util=0.95, base_loss=1e-4)
        assert link.loss(0.0) > 1e-3

    def test_congestion_loss_bounded(self):
        link = make_link(base_util=0.995, base_loss=0.0)
        assert link.loss(0.0) <= MAX_CONGESTION_LOSS

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_loss_in_unit_interval(self, util):
        link = make_link(base_util=util)
        assert 0.0 <= link.loss(0.0) <= 1.0


class TestAvailability:
    def test_headroom(self):
        link = make_link(base_util=0.4, capacity=1_000.0)
        assert link.available_bw_mbps(0.0) == pytest.approx(600.0)

    def test_fair_share_floor(self):
        link = make_link(base_util=0.995, capacity=1_000.0)
        assert link.available_bw_mbps(0.0) >= MIN_FAIR_SHARE * 1_000.0


class TestFailure:
    def test_failed_link_is_lossy_and_dead(self):
        link = make_link()
        link.fail()
        assert link.loss(0.0) == 1.0
        assert link.available_bw_mbps(0.0) == 0.0
        link.restore()
        assert link.loss(0.0) < 1.0


class TestBackgroundLoad:
    def test_deterministic(self):
        a = BackgroundLoad(base_util=0.5, episode_rate_per_day=2.0, seed=9)
        b = BackgroundLoad(base_util=0.5, episode_rate_per_day=2.0, seed=9)
        times = [100.0, 5_000.0, 90_000.0, 200_000.0]
        assert [a.utilization(t) for t in times] == [b.utilization(t) for t in times]

    def test_diurnal_peak_at_peak_hour(self):
        load = BackgroundLoad(
            base_util=0.5, diurnal_amp=0.1, peak_hour=20.0, episode_rate_per_day=0.0
        )
        peak = load.utilization(20 * 3600.0)
        trough = load.utilization(8 * 3600.0)
        assert peak == pytest.approx(0.6, abs=1e-6)
        assert trough == pytest.approx(0.4, abs=1e-6)

    def test_utilization_clamped(self):
        load = BackgroundLoad(
            base_util=0.95, diurnal_amp=0.2, episode_rate_per_day=5.0, episode_severity=0.5, seed=1
        )
        for t in range(0, 200_000, 7_000):
            assert 0.0 <= load.utilization(float(t)) <= 0.995

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            BackgroundLoad(base_util=0.5).utilization(-1.0)

    def test_episode_activity_window(self):
        ep = Episode(start_s=100.0, duration_s=50.0, extra_util=0.2)
        assert not ep.active_at(99.9)
        assert ep.active_at(100.0)
        assert ep.active_at(149.9)
        assert not ep.active_at(150.0)

    def test_episodes_eventually_occur(self):
        load = BackgroundLoad(
            base_util=0.3, diurnal_amp=0.0, episode_rate_per_day=6.0, episode_severity=0.3, seed=5
        )
        samples = [load.utilization(float(t)) for t in range(0, 7 * 86_400, 600)]
        assert max(samples) > 0.35  # some episode pushed load above base

    def test_peak_hour_for_longitude(self):
        # UTC longitudes peak at 20:00 UTC; +90E peaks 6 hours earlier.
        assert peak_hour_for_longitude(0.0) == pytest.approx(20.0)
        assert peak_hour_for_longitude(90.0) == pytest.approx(14.0)
        assert 0.0 <= peak_hour_for_longitude(-170.0) < 24.0

"""ProbeScheduler: jittered cadence, byte budgets, timeout semantics."""

from __future__ import annotations

import math

import pytest

from repro.control.probes import ProbeConfig, ProbeScheduler
from repro.core.pathset import PathSet, PathType
from repro.errors import ControlError
from repro.rand import RandomStreams
from repro.tunnel.node import OverlayNode


@pytest.fixture()
def pathset(small_internet) -> PathSet:
    node = OverlayNode(host=small_internet.host("vm"))
    return PathSet.build(small_internet, "server", "client", [node])


def scheduler(pathset, **overrides) -> ProbeScheduler:
    config = ProbeConfig(**overrides)
    return ProbeScheduler(pathset, config, RandomStreams(seed=5).stream("probe"))


class TestScheduling:
    def test_all_paths_due_at_start(self, pathset):
        sched = scheduler(pathset)
        assert sched.due(0.0) == ["direct", "vm"]

    def test_jittered_reschedule_within_bounds(self, pathset):
        sched = scheduler(pathset, interval_s=30.0, jitter_frac=0.1)
        sched.probe("direct", 0.0)
        next_due = sched._next_due["direct"]
        assert 27.0 <= next_due <= 33.0
        assert sched.due(next_due - 0.5) == ["vm"]

    def test_deterministic_for_fixed_seed(self, pathset):
        first = scheduler(pathset)
        second = scheduler(pathset)
        a = first.probe("direct", 0.0)
        b = second.probe("direct", 0.0)
        assert a == b
        assert first._next_due == second._next_due

    def test_unknown_label_rejected(self, pathset):
        with pytest.raises(ControlError):
            scheduler(pathset).probe("nope", 0.0)


class TestProbeResults:
    def test_live_path_probe(self, pathset):
        result = scheduler(pathset).probe("direct", 0.0)
        assert result.ok
        assert result.rtt_ms > 0
        assert 0.0 <= result.loss < 1.0
        assert result.throughput_mbps > 0
        assert result.bytes_cost > 0

    def test_overlay_probe_uses_concatenated_path(self, pathset):
        result = scheduler(pathset).probe("vm", 0.0)
        assert result.ok
        expected = pathset.options[0].concatenated.rtt_ms(0.0)
        assert result.rtt_ms == pytest.approx(expected)

    def test_dead_path_times_out(self, pathset):
        pathset.direct.links[2].fail()
        result = scheduler(pathset).probe("direct", 0.0)
        assert not result.ok
        assert result.rtt_ms == math.inf
        assert result.loss == 1.0
        assert result.throughput_mbps == 0.0
        pathset.direct.links[2].restore()

    def test_timeout_costs_fewer_bytes(self, pathset):
        live = scheduler(pathset).probe("direct", 0.0)
        pathset.direct.links[2].fail()
        dead = scheduler(pathset).probe("direct", 0.0)
        assert dead.bytes_cost < live.bytes_cost  # no echoes, no transfer
        pathset.direct.links[2].restore()

    def test_rtt_only_probing(self, pathset):
        sched = scheduler(pathset, measure_throughput=False)
        result = sched.probe("direct", 0.0)
        assert result.throughput_mbps is None
        assert result.bytes_cost == 2 * 10 * 64


class TestBudget:
    def test_budget_skips_and_counts(self, pathset):
        # Budget fits one ping-only probe per interval, not two.
        sched = scheduler(
            pathset,
            measure_throughput=False,
            budget_bytes_per_interval=1500,
        )
        first = sched.probe("direct", 0.0)
        second = sched.probe("vm", 0.0)
        assert first is not None
        assert second is None
        assert sched.probes_sent == 1
        assert sched.probes_skipped == 1

    def test_budget_window_resets(self, pathset):
        sched = scheduler(
            pathset,
            interval_s=30.0,
            jitter_frac=0.0,
            measure_throughput=False,
            budget_bytes_per_interval=1500,
        )
        assert sched.probe("direct", 0.0) is not None
        assert sched.probe("vm", 0.0) is None
        # A full interval later the window resets and vm is probed.
        assert sched.probe("vm", 30.0) is not None

    def test_probe_due_returns_obtained_results(self, pathset):
        sched = scheduler(pathset, measure_throughput=False)
        results = sched.probe_due(0.0)
        assert [r.label for r in results] == ["direct", "vm"]
        assert sched.last_result["direct"].ok


class TestConfigValidation:
    def test_direct_mode_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(mode=PathType.DIRECT)

    def test_bad_interval_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(interval_s=0.0)

    def test_bad_budget_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(budget_bytes_per_interval=0)


class TestAdaptiveCadence:
    def adaptive(self, pathset, **overrides) -> ProbeScheduler:
        defaults = dict(
            interval_s=60.0, jitter_frac=0.0, adaptive=True,
            min_interval_s=15.0, max_interval_s=60.0, tighten_factor=0.5,
            relax_factor=2.0,
        )
        defaults.update(overrides)
        return scheduler(pathset, **defaults)

    def test_tightens_toward_floor_while_unhealthy(self, pathset):
        sched = self.adaptive(pathset)
        sched.adapt(0.0, all_healthy=False)
        assert sched.current_interval_s == pytest.approx(30.0)
        sched.adapt(10.0, all_healthy=False)
        assert sched.current_interval_s == pytest.approx(15.0)
        sched.adapt(20.0, all_healthy=False)  # already at the floor
        assert sched.current_interval_s == pytest.approx(15.0)
        assert sched.cadence_tightenings == 2

    def test_tighten_pulls_in_pending_timers(self, pathset):
        sched = self.adaptive(pathset)
        sched.probe("direct", 0.0)
        assert sched._next_due["direct"] == pytest.approx(60.0)
        sched.adapt(0.0, all_healthy=False)
        # No probe waits longer than one new interval.
        assert sched._next_due["direct"] <= 0.0 + sched.current_interval_s

    def test_relax_is_rate_limited(self, pathset):
        sched = self.adaptive(pathset)
        for t in (0.0, 10.0):
            sched.adapt(t, all_healthy=False)  # down to the 15 s floor
        sched.adapt(11.0, all_healthy=True)  # too soon after trouble
        assert sched.current_interval_s == pytest.approx(15.0)
        sched.adapt(30.0, all_healthy=True)  # one interval later: relax
        assert sched.current_interval_s == pytest.approx(30.0)
        sched.adapt(31.0, all_healthy=True)  # rate limit again
        assert sched.current_interval_s == pytest.approx(30.0)
        sched.adapt(65.0, all_healthy=True)
        assert sched.current_interval_s == pytest.approx(60.0)
        assert sched.cadence_relaxations == 2

    def test_ceiling_caps_relaxation(self, pathset):
        sched = self.adaptive(pathset)
        sched.adapt(0.0, all_healthy=False)
        sched.adapt(100.0, all_healthy=True)
        sched.adapt(200.0, all_healthy=True)
        sched.adapt(300.0, all_healthy=True)
        assert sched.current_interval_s == pytest.approx(60.0)

    def test_noop_when_adaptive_off(self, pathset):
        sched = scheduler(pathset, interval_s=60.0, jitter_frac=0.0)
        sched.probe("direct", 0.0)
        before = dict(sched._next_due)
        sched.adapt(0.0, all_healthy=False)
        assert sched.current_interval_s == pytest.approx(60.0)
        assert sched._next_due == before

    def test_reschedule_uses_current_interval(self, pathset):
        sched = self.adaptive(pathset)
        sched.adapt(0.0, all_healthy=False)
        sched.adapt(10.0, all_healthy=False)  # floor: 15 s
        sched.probe("direct", 20.0)
        assert sched._next_due["direct"] == pytest.approx(35.0)

    def test_adaptive_config_validated(self):
        with pytest.raises(ControlError):
            ProbeConfig(adaptive=True, min_interval_s=0.0)
        with pytest.raises(ControlError):
            ProbeConfig(adaptive=True, min_interval_s=30.0, max_interval_s=10.0)
        with pytest.raises(ControlError):
            ProbeConfig(adaptive=True, tighten_factor=1.0)
        with pytest.raises(ControlError):
            ProbeConfig(adaptive=True, relax_factor=1.0)

    def test_defaults_derive_from_interval(self):
        config = ProbeConfig(interval_s=60.0, adaptive=True)
        assert config.floor_interval_s == pytest.approx(15.0)
        assert config.ceiling_interval_s == pytest.approx(60.0)

"""ProbeScheduler: jittered cadence, byte budgets, timeout semantics."""

from __future__ import annotations

import math

import pytest

from repro.control.probes import ProbeConfig, ProbeScheduler
from repro.core.pathset import PathSet, PathType
from repro.errors import ControlError
from repro.rand import RandomStreams
from repro.tunnel.node import OverlayNode


@pytest.fixture()
def pathset(small_internet) -> PathSet:
    node = OverlayNode(host=small_internet.host("vm"))
    return PathSet.build(small_internet, "server", "client", [node])


def scheduler(pathset, **overrides) -> ProbeScheduler:
    config = ProbeConfig(**overrides)
    return ProbeScheduler(pathset, config, RandomStreams(seed=5).stream("probe"))


class TestScheduling:
    def test_all_paths_due_at_start(self, pathset):
        sched = scheduler(pathset)
        assert sched.due(0.0) == ["direct", "vm"]

    def test_jittered_reschedule_within_bounds(self, pathset):
        sched = scheduler(pathset, interval_s=30.0, jitter_frac=0.1)
        sched.probe("direct", 0.0)
        next_due = sched._next_due["direct"]
        assert 27.0 <= next_due <= 33.0
        assert sched.due(next_due - 0.5) == ["vm"]

    def test_deterministic_for_fixed_seed(self, pathset):
        first = scheduler(pathset)
        second = scheduler(pathset)
        a = first.probe("direct", 0.0)
        b = second.probe("direct", 0.0)
        assert a == b
        assert first._next_due == second._next_due

    def test_unknown_label_rejected(self, pathset):
        with pytest.raises(ControlError):
            scheduler(pathset).probe("nope", 0.0)


class TestProbeResults:
    def test_live_path_probe(self, pathset):
        result = scheduler(pathset).probe("direct", 0.0)
        assert result.ok
        assert result.rtt_ms > 0
        assert 0.0 <= result.loss < 1.0
        assert result.throughput_mbps > 0
        assert result.bytes_cost > 0

    def test_overlay_probe_uses_concatenated_path(self, pathset):
        result = scheduler(pathset).probe("vm", 0.0)
        assert result.ok
        expected = pathset.options[0].concatenated.rtt_ms(0.0)
        assert result.rtt_ms == pytest.approx(expected)

    def test_dead_path_times_out(self, pathset):
        pathset.direct.links[2].fail()
        result = scheduler(pathset).probe("direct", 0.0)
        assert not result.ok
        assert result.rtt_ms == math.inf
        assert result.loss == 1.0
        assert result.throughput_mbps == 0.0
        pathset.direct.links[2].restore()

    def test_timeout_costs_fewer_bytes(self, pathset):
        live = scheduler(pathset).probe("direct", 0.0)
        pathset.direct.links[2].fail()
        dead = scheduler(pathset).probe("direct", 0.0)
        assert dead.bytes_cost < live.bytes_cost  # no echoes, no transfer
        pathset.direct.links[2].restore()

    def test_rtt_only_probing(self, pathset):
        sched = scheduler(pathset, measure_throughput=False)
        result = sched.probe("direct", 0.0)
        assert result.throughput_mbps is None
        assert result.bytes_cost == 2 * 10 * 64


class TestBudget:
    def test_budget_skips_and_counts(self, pathset):
        # Budget fits one ping-only probe per interval, not two.
        sched = scheduler(
            pathset,
            measure_throughput=False,
            budget_bytes_per_interval=1500,
        )
        first = sched.probe("direct", 0.0)
        second = sched.probe("vm", 0.0)
        assert first is not None
        assert second is None
        assert sched.probes_sent == 1
        assert sched.probes_skipped == 1

    def test_budget_window_resets(self, pathset):
        sched = scheduler(
            pathset,
            interval_s=30.0,
            jitter_frac=0.0,
            measure_throughput=False,
            budget_bytes_per_interval=1500,
        )
        assert sched.probe("direct", 0.0) is not None
        assert sched.probe("vm", 0.0) is None
        # A full interval later the window resets and vm is probed.
        assert sched.probe("vm", 30.0) is not None

    def test_probe_due_returns_obtained_results(self, pathset):
        sched = scheduler(pathset, measure_throughput=False)
        results = sched.probe_due(0.0)
        assert [r.label for r in results] == ["direct", "vm"]
        assert sched.last_result["direct"].ok


class TestConfigValidation:
    def test_direct_mode_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(mode=PathType.DIRECT)

    def test_bad_interval_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(interval_s=0.0)

    def test_bad_budget_rejected(self):
        with pytest.raises(ControlError):
            ProbeConfig(budget_bytes_per_interval=0)

"""MetricsRegistry: counters, gauges, histograms, snapshots."""

from __future__ import annotations

import pytest

from repro.control.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry, metric_key
from repro.errors import ControlError


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("probes_sent_total", None) == "probes_sent_total"

    def test_labels_sorted(self):
        key = metric_key("x", {"b": "2", "a": "1"})
        assert key == "x{a=1,b=2}"

    def test_empty_name_rejected(self):
        with pytest.raises(ControlError):
            metric_key("", None)


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("failovers_total")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_decrease_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ControlError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"path": "direct"})
        b = registry.counter("c", {"path": "direct"})
        a.inc()
        assert b.value == 1
        assert a is b


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("goodput_mbps")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_buckets(self):
        histogram = Histogram(key="h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(50.0)
        assert histogram.count == 3
        assert histogram.counts == [1, 2]  # cumulative buckets
        assert histogram.inf_count == 3
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ControlError):
            Histogram(key="h", buckets=(10.0, 1.0))

    def test_as_dict(self):
        histogram = Histogram(key="h", buckets=(2.0,))
        histogram.observe(1.0)
        data = histogram.as_dict()
        assert data["count"] == 1
        assert data["sum"] == 1.0
        assert data["buckets"] == {"le_2": 1, "le_inf": 1}


class TestRegistry:
    def test_snapshot_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc(2)
        registry.gauge("z_gauge").set(1.5)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_total", "b_total", "z_gauge", "lat"]
        assert snapshot["a_total"] == 2
        assert snapshot["lat"]["count"] == 1

    def test_snapshot_deterministic(self):
        def build() -> dict:
            registry = MetricsRegistry()
            registry.counter("probes", {"path": "direct"}).inc(7)
            registry.gauge("active").set(2)
            registry.histogram("h").observe(3.0)
            return registry.snapshot()

        assert build() == build()

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ControlError):
            registry.gauge("x")
        with pytest.raises(ControlError):
            registry.histogram("x")

    def test_render_lines(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        rendered = registry.render()
        assert "a 1" in rendered
        assert "h count=1" in rendered

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

"""Shared fixtures: a small deterministic world reused across tests."""

from __future__ import annotations

import pytest

from repro.net import Internet, TopologyConfig, generate_topology
from repro.net.asn import ASKind
from repro.rand import RandomStreams


@pytest.fixture(scope="session")
def small_topology():
    """A small generated topology (session-scoped: generation is pure)."""
    streams = RandomStreams(seed=1234)
    return generate_topology(TopologyConfig.small(), streams)


@pytest.fixture()
def small_internet():
    """A freshly built small Internet with a cloud AS and three hosts.

    Function-scoped because tests mutate link state (failures) and
    attach hosts.
    """
    streams = RandomStreams(seed=1234)
    topo = generate_topology(TopologyConfig.small(), streams)
    t1s = [a.asn for a in topo.ases_of_kind(ASKind.TIER1)]
    transits = [a.asn for a in topo.ases_of_kind(ASKind.TRANSIT)]
    cloud = topo.add_cloud_as(
        "softcloud",
        ("dallas", "amsterdam", "tokyo", "san_jose", "washington_dc"),
        t1s[:2],
        transits,
    )
    net = Internet(topo, streams)
    stubs = topo.ases_of_kind(ASKind.STUB)
    net.attach_host("client", stubs[0].asn, kind="planetlab")
    net.attach_host("server", stubs[-1].asn, kind="server")
    net.attach_host("vm", cloud.asn, kind="cloud_vm")
    net.cloud_asn = cloud.asn  # convenience for tests
    return net
